// Estimator: the paper's §V quantities packaged for scheduling decisions.
//
// Given a candidate set of enrolled workers with per-worker remaining
// communication needs and a remaining coupled workload W, produces the
// probability that the iteration completes with no enrolled worker going
// DOWN, and the (approximate) expected number of slots it takes:
//
//   computation (§V-A):  P_comp = P+(S)^(W-1)
//                        E_comp = (1 + (W-1) E_c) / P+(S)^(W-1)
//   communication (§V-B): E_comm = max_q E^{(q)}(n_q)            if |S| <= ncom
//                         E_comm = max(that,  sum n_q / ncom)    otherwise
//                         P_comm = prod_q P_ND^{(q)}(E_comm)
//   iteration:           P = P_comm * P_comp,  E = E_comm + E_comp
//
// Set-level statistics are memoized by membership bitmask (the platform is
// fixed per run), and per-processor survival rows are tabulated lazily, so
// the incremental heuristics' O(m*p) candidate evaluations per decision are
// cheap after warm-up. Instances are NOT thread-safe; use one per run.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "markov/series.hpp"
#include "model/application.hpp"
#include "platform/platform.hpp"

namespace tcgrid::sched {

/// Probability of success and expected duration of (the remainder of) an
/// iteration on a candidate configuration.
struct IterationEstimate {
  double p_success = 1.0;
  double e_time = 0.0;
};

class Estimator {
 public:
  /// eps: truncation precision of the Theorem 5.1 series.
  Estimator(const platform::Platform& platform, const model::Application& app,
            double eps = 1e-9);

  /// Remaining communication need of one enrolled worker.
  struct CommNeed {
    int proc = -1;
    long slots = 0;  ///< n_q: remaining transfer slots (program + data)
  };

  /// Full §V estimate: communication for `needs`, then W coupled compute
  /// slots on `set`. `needs` must cover exactly the workers of `set`
  /// (zero-slot entries allowed). `w` is the *remaining* workload.
  [[nodiscard]] IterationEstimate evaluate(std::span<const CommNeed> needs,
                                           std::span<const int> set, long w) const;

  /// Coupled-computation statistics of a worker set (memoized).
  [[nodiscard]] const markov::CoupledStats& set_stats(std::span<const int> set) const;

  /// Single-worker statistics (used for per-worker communication times).
  [[nodiscard]] const markov::CoupledStats& proc_stats(int q) const {
    return per_proc_[static_cast<std::size_t>(q)];
  }

  /// P_ND^{(q)}(t): probability that q (UP now) avoids DOWN for t slots.
  [[nodiscard]] double p_no_down(int q, long t) const;

  /// Expected communication-phase duration alone (paper §V-B).
  [[nodiscard]] double expected_comm_time(std::span<const CommNeed> needs) const;

  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] const platform::Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] const model::Application& app() const noexcept { return app_; }

  /// Number of distinct worker sets memoized so far (observability/tests).
  [[nodiscard]] std::size_t cached_sets() const noexcept { return set_cache_.size(); }

 private:
  const platform::Platform& platform_;
  const model::Application& app_;
  double eps_;

  std::vector<markov::UrMatrix> ur_;               // per-processor UR sub-matrix
  std::vector<markov::CoupledStats> per_proc_;     // coupled_stats({q})
  mutable std::vector<std::vector<double>> survival_;  // P_ND tables, lazily grown
  mutable std::unordered_map<std::uint64_t, markov::CoupledStats> set_cache_;
  mutable std::vector<markov::UrMatrix> scratch_;  // reused per set_stats call
};

}  // namespace tcgrid::sched
