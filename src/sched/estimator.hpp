// Estimator: the paper's §V quantities packaged for scheduling decisions.
//
// Given a candidate set of enrolled workers with per-worker remaining
// communication needs and a remaining coupled workload W, produces the
// probability that the iteration completes with no enrolled worker going
// DOWN, and the (approximate) expected number of slots it takes:
//
//   computation (§V-A):  P_comp = P+(S)^(W-1)
//                        E_comp = (1 + (W-1) E_c) / P+(S)^(W-1)
//   communication (§V-B): E_comm = max_q E^{(q)}(n_q)            if |S| <= ncom
//                         E_comm = max(that,  sum n_q / ncom)    otherwise
//                         P_comm = prod_q P_ND^{(q)}(E_comm)
//   iteration:           P = P_comm * P_comp,  E = E_comm + E_comp
//
// The estimator is a thin per-scenario VIEW over a markov::ChainStatsStore
// (DESIGN.md §10): at construction every processor's UR sub-matrix is
// interned by content, and all series math — per-chain coupled statistics,
// survival tables, set-level coupled statistics keyed by the multiset of
// chain ids — resolves through the store, computed once per distinct chain
// (or multiset) no matter how many processors, estimators or threads share
// it. Pass a session-shared store to share across scenario cells and pool
// workers (api::Options::shared_chain_stats); omit it and the estimator owns
// a private store — the ablation baseline, bit-identical by construction.
//
// Set-level statistics are additionally front-cached per view by membership
// bitmask (the platform is fixed per run), so the incremental heuristics'
// O(m*p) candidate evaluations per decision never touch a lock after
// warm-up. Instances are NOT thread-safe; use one per run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "markov/chain_stats.hpp"
#include "markov/series.hpp"
#include "model/application.hpp"
#include "model/configuration.hpp"
#include "platform/platform.hpp"

namespace tcgrid::sched {

namespace detail {
/// Finalizer of splitmix64: full-avalanche mixing of cache keys. In the
/// header so the inline front-cache fast paths and the out-of-line cache
/// internals hash identically.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace detail

/// Probability of success and expected duration of (the remainder of) an
/// iteration on a candidate configuration.
struct IterationEstimate {
  double p_success = 1.0;
  double e_time = 0.0;
};

/// One memoized incremental build (see IncrementalBuilder): the chosen
/// configuration and its full-iteration estimate.
struct MemoizedBuild {
  model::Configuration config;
  IterationEstimate estimate;
};

class Estimator {
 public:
  /// eps: truncation precision of the Theorem 5.1 series. `store`: the
  /// chain-statistics store to resolve through; nullptr (the default) gives
  /// the estimator a private store. A shared store's eps must equal `eps`
  /// (throws std::invalid_argument otherwise — every stored quantity
  /// depends on the truncation precision).
  Estimator(const platform::Platform& platform, const model::Application& app,
            double eps = 1e-9,
            std::shared_ptr<markov::ChainStatsStore> store = nullptr);

  /// Remaining communication need of one enrolled worker.
  struct CommNeed {
    int proc = -1;
    long slots = 0;  ///< n_q: remaining transfer slots (program + data)
  };

  /// Full §V estimate: communication for `needs`, then W coupled compute
  /// slots on `set`. `needs` must cover exactly the workers of `set`
  /// (zero-slot entries allowed). `w` is the *remaining* workload.
  [[nodiscard]] IterationEstimate evaluate(std::span<const CommNeed> needs,
                                           std::span<const int> set, long w) const;

  /// Coupled-computation statistics of a worker set. Front-cached per view
  /// by membership bitmask; resolved through the store by the multiset of
  /// chain ids on a front miss. The reference stays valid until the SECOND
  /// cap-triggered eviction after it was returned (epoch retirement, see
  /// SetCache::evict) — in practice, for any realistic hold.
  [[nodiscard]] const markov::CoupledStats& set_stats(std::span<const int> set) const;

  /// set_stats with the membership bitmask precomputed by the caller. The
  /// incremental builder derives each candidate key in O(1) from its round's
  /// base mask (`base | 1 << q`) instead of re-folding the set per
  /// candidate; `set` is only read on a front-cache miss. `key` must be the
  /// bitmask of `set`.
  [[nodiscard]] const markov::CoupledStats& set_stats_masked(
      std::uint64_t key, std::span<const int> set) const;

  /// Batched set_stats front-cache probe: out[i] receives the cached entry
  /// for bitmask keys[i], or nullptr on a front miss (no insertion — resolve
  /// misses through set_stats_masked). One cache traversal answers the whole
  /// batch; the hot candidate loops probe all of a decision round's keys at
  /// once instead of once per trial-and-candidate.
  void set_stats_probe(std::span<const std::uint64_t> keys,
                       const markov::CoupledStats** out) const;

  /// Scalar front-cache probe by precomputed bitmask key: the cached entry
  /// or nullptr (no insertion). Inline fast path for the candidate loop.
  [[nodiscard]] const markov::CoupledStats* set_stats_cached(
      std::uint64_t key) const noexcept {
    return set_cache_.find(key);
  }

  /// Batched survival probe: out[i] = p_no_down(q, depths[i]) for every i,
  /// bit-identical to the scalar calls, with the chain's published length
  /// and flat array acquired once per batch and at most one table growth
  /// (markov::ChainSurvival::survival_at). This is how a decision round (or
  /// a trial batch sharing this view) walks the store's flat arrays once
  /// per batch instead of once per trial.
  void survival_at(int q, std::span<const long> depths, std::span<double> out) const {
    surv_of_[static_cast<std::size_t>(q)]->survival_at(depths, out);
  }

  /// Single-worker statistics (used for per-worker communication times).
  /// A per-view copy of the store's per-chain quad — the heavy series math
  /// ran once per DISTINCT chain in the store; the copy exists so this
  /// view's lazily grown w-memo stays private (and the lookup stays a
  /// direct vector index: this sits under every §V-B evaluation).
  [[nodiscard]] const markov::CoupledStats& proc_stats(int q) const {
    return per_proc_[static_cast<std::size_t>(q)];
  }

  /// P_ND^{(q)}(t): probability that q (UP now) avoids DOWN for t slots.
  /// Table-hit fast path inline: this sits under every §V-B evaluation
  /// (two calls per evaluate, tens of millions per sweep), where the
  /// out-of-line call itself was measurable. The table is the chain's
  /// shared store table, read lock-free at the exact depth of the old
  /// private flat vector (published-length acquire + pointer + index); the
  /// terminal exact-zero answer is also inline and lock-free, because once
  /// the table ends in 0.0 it is complete forever. Only growth goes out of
  /// line (per-chain append mutex).
  [[nodiscard]] double p_no_down(int q, long t) const {
    if (t <= 0) return 1.0;
    markov::ChainSurvival& s = *surv_of_[static_cast<std::size_t>(q)];
    const long n = s.published();
    const double* flat = s.flat();
    if (t < n) return flat[t];
    if (n > 0 && flat[n - 1] == 0.0) return 0.0;
    return s.grow_to(t);
  }

  /// Expected communication-phase duration alone (paper §V-B).
  [[nodiscard]] double expected_comm_time(std::span<const CommNeed> needs) const;

  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] const platform::Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] const model::Application& app() const noexcept { return app_; }

  /// The store this view resolves through (shared or private).
  [[nodiscard]] const std::shared_ptr<markov::ChainStatsStore>& chain_store()
      const noexcept {
    return store_;
  }

  /// Canonical id of processor q's availability chain in chain_store().
  [[nodiscard]] markov::ChainId chain_id(int q) const {
    return chain_of_[static_cast<std::size_t>(q)];
  }

  /// Number of distinct worker sets front-cached so far (observability/tests).
  [[nodiscard]] std::size_t cached_sets() const noexcept { return set_cache_.size(); }

  /// Test hook: lower the eviction caps of the set front cache and the build
  /// memo so epoch retirement is exercisable without 4M insertions. Caps are
  /// clamped to >= 1: a zero cap would request eviction of an empty cache,
  /// which the eviction path (correctly) asserts against.
  void set_eviction_caps_for_test(std::size_t sets, std::size_t builds) const noexcept {
    set_cap_ = std::max<std::size_t>(1, sets);
    build_cap_ = std::max<std::size_t>(1, builds);
  }

  /// Shared memo of incremental builds, keyed by (rule, input-signature) —
  /// see IncrementalBuilder::build. It lives here, not in the per-trial
  /// schedulers, because the estimator is the one object a sweep shares
  /// across all trials and heuristics of a scenario: restarts re-enter the
  /// same (UP set, holdings) signatures over and over across trials, and a
  /// build is a pure function of the signed inputs, so a memo hit returns
  /// exactly what a rebuild would. Open-addressed for the same reason as
  /// SetCache: the lookup runs once per proactive consult, where bucket
  /// chasing was measurable. Bounded like the set cache, with the same
  /// epoch-retired eviction (references survive one full epoch).
  class BuildMemo {
   public:
    /// The memoized build for `key`, or nullptr. The pointer is stable
    /// across growth (values live in stable chunks).
    [[nodiscard]] MemoizedBuild* find(std::uint64_t key) noexcept;
    /// Insert a slot for `key` (which must be absent) and return it. Split
    /// from find() so callers can run the (throwing) build BEFORE the key
    /// becomes visible — a lookup-then-build API would memoize an empty
    /// configuration if the build threw mid-sweep.
    MemoizedBuild& insert(std::uint64_t key);
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    /// Cap-triggered eviction with epoch retirement: the index is dropped
    /// but the value chunks survive until the NEXT eviction, so references
    /// handed out before this call keep reading their (unchanged) values
    /// for a whole epoch — the fix for the historical dangling-reference
    /// hazard of an eager clear() (DESIGN.md §10).
    void evict();

   private:
    void grow();
    struct Entry {
      std::uint64_t key = 0;
      std::int32_t slot = -1;  // -1 = empty
    };
    std::vector<Entry> table_;  // power-of-two capacity
    static constexpr std::size_t kChunk = 64;
    std::vector<std::unique_ptr<MemoizedBuild[]>> chunks_;
    std::vector<std::unique_ptr<MemoizedBuild[]>> retired_;  // previous epoch
    std::size_t size_ = 0;
  };

  [[nodiscard]] BuildMemo& build_memo() const {
    if (build_memo_.size() >= build_cap_) build_memo_.evict();
    return build_memo_;
  }

 private:
  /// Open-addressing bitmask -> CoupledStats front cache. set_stats sits on
  /// the m*p-evaluations-per-decision hot path, where std::unordered_map's
  /// bucket chasing is measurable; linear probing over a power-of-two table
  /// of (key, slot) pairs is 2-3x cheaper per hit. Values live in a stable
  /// deque-like store so returned references survive growth, and eviction
  /// retires chunks for one epoch instead of freeing them (see evict()).
  class SetCache {
   public:
    /// Returns the value slot for `key`, default-constructing it (and
    /// setting `fresh`) on first sight.
    markov::CoupledStats& lookup(std::uint64_t key, bool& fresh);
    /// Probe-only scalar lookup: the cached value for `key`, or nullptr.
    /// Never inserts or evicts. Inline: this sits under every candidate
    /// evaluation of the incremental builder.
    [[nodiscard]] const markov::CoupledStats* find(std::uint64_t key) const noexcept {
      if (table_.empty()) return nullptr;
      const std::size_t mask = table_.size() - 1;
      std::size_t i = static_cast<std::size_t>(detail::mix64(key)) & mask;
      while (table_[i].slot >= 0 && table_[i].key != key) i = (i + 1) & mask;
      if (table_[i].slot < 0) return nullptr;
      const auto slot = static_cast<std::size_t>(table_[i].slot);
      return &chunks_[slot / kChunk][slot % kChunk];
    }
    /// Probe-only batched lookup: out[i] points at the cached value for
    /// keys[i], or nullptr when absent. Never inserts or evicts.
    void probe(std::span<const std::uint64_t> keys,
               const markov::CoupledStats** out) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    /// Same epoch-retired eviction contract as BuildMemo::evict().
    void evict();

   private:
    void grow();
    struct Entry {
      std::uint64_t key = 0;
      std::int32_t slot = -1;  // -1 = empty
    };
    std::vector<Entry> table_;  // power-of-two capacity
    static constexpr std::size_t kChunk = 256;
    std::vector<std::unique_ptr<markov::CoupledStats[]>> chunks_;
    std::vector<std::unique_ptr<markov::CoupledStats[]>> retired_;  // prev epoch
    std::size_t size_ = 0;
  };

  const platform::Platform& platform_;
  const model::Application& app_;
  double eps_;

  /// The store every series quantity resolves through (shared across the
  /// session, or private to this view when sharing is ablated).
  std::shared_ptr<markov::ChainStatsStore> store_;
  std::vector<markov::ChainId> chain_of_;  // processor -> canonical chain id
  /// Per-processor coupled statistics: quads copied from the store's
  /// per-chain entries (computed once per DISTINCT chain, ever), with this
  /// view's private lazily grown w-memo (CoupledStats' memo is not
  /// thread-safe, so views never grow it on shared store instances; the
  /// memo entries are pure functions of the quad, so per-view copies stay
  /// bit-identical to any other view's).
  std::vector<markov::CoupledStats> per_proc_;
  std::vector<markov::ChainSurvival*> surv_of_;  // processor -> shared table

  mutable SetCache set_cache_;
  mutable std::vector<markov::ChainId> scratch_ids_;  // reused per set_stats miss
  mutable BuildMemo build_memo_;
  mutable std::size_t set_cap_;    // eviction caps (lowered only by tests)
  mutable std::size_t build_cap_;
};

}  // namespace tcgrid::sched
