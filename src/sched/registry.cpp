#include "sched/registry.hpp"

#include <stdexcept>

#include "sched/baselines.hpp"
#include "sched/heuristics.hpp"

namespace tcgrid::sched {

namespace {

const Rule kRules[] = {Rule::IP, Rule::IE, Rule::IY, Rule::IAY};
const Criterion kCriteria[] = {Criterion::P, Criterion::E, Criterion::Y};

bool parse_rule(std::string_view s, Rule& out) {
  for (Rule r : kRules) {
    if (s == to_string(r)) {
      out = r;
      return true;
    }
  }
  return false;
}

bool parse_criterion(std::string_view s, Criterion& out) {
  for (Criterion c : kCriteria) {
    if (s == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& all_heuristic_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    v.emplace_back("RANDOM");
    for (Rule r : kRules) v.emplace_back(to_string(r));
    for (Criterion c : kCriteria) {
      for (Rule r : kRules) {
        v.push_back(std::string(to_string(c)) + "-" + std::string(to_string(r)));
      }
    }
    return v;
  }();
  return names;
}

const std::vector<std::string>& tableii_heuristic_names() {
  static const std::vector<std::string> names = {
      "Y-IE", "P-IE", "E-IAY", "E-IY", "E-IP", "IAY", "IY", "IE"};
  return names;
}

const std::vector<std::string>& extension_heuristic_names() {
  static const std::vector<std::string> names = {
      "FASTEST", "MOSTAVAIL", "UPTIME", "ADAPT-IE", "ADAPT-IAY",
      "ADAPT-Y-IE", "ADAPT-P-IE", "ADAPT-E-IAY"};
  return names;
}

bool is_heuristic_name(std::string_view name) {
  for (const auto& n : all_heuristic_names()) {
    if (n == name) return true;
  }
  for (const auto& n : extension_heuristic_names()) {
    if (n == name) return true;
  }
  return false;
}

std::unique_ptr<sim::Scheduler> make_scheduler(std::string_view name,
                                               const Estimator& estimator,
                                               std::uint64_t seed) {
  if (name == "RANDOM") return std::make_unique<RandomScheduler>(seed);
  if (name == "FASTEST") return std::make_unique<FastestScheduler>();
  if (name == "MOSTAVAIL") return std::make_unique<MostAvailableScheduler>();
  if (name == "UPTIME") return std::make_unique<UptimeScheduler>();

  if (name.rfind("ADAPT-", 0) == 0) {
    const auto body = name.substr(6);
    const auto dash = body.find('-');
    std::optional<Criterion> crit;
    Rule rule;
    if (dash == std::string_view::npos) {
      if (!parse_rule(body, rule)) {
        throw std::invalid_argument("make_scheduler: unknown heuristic '" +
                                    std::string(name) + "'");
      }
    } else {
      Criterion c;
      if (!parse_criterion(body.substr(0, dash), c) ||
          !parse_rule(body.substr(dash + 1), rule)) {
        throw std::invalid_argument("make_scheduler: unknown heuristic '" +
                                    std::string(name) + "'");
      }
      crit = c;
    }
    return std::make_unique<AdaptiveScheduler>(crit, rule, estimator.platform(),
                                               estimator.app(), estimator.eps());
  }

  const auto dash = name.find('-');
  if (dash == std::string_view::npos) {
    Rule rule;
    if (parse_rule(name, rule)) {
      return std::make_unique<PassiveScheduler>(rule, estimator);
    }
  } else {
    Criterion crit;
    Rule rule;
    if (parse_criterion(name.substr(0, dash), crit) &&
        parse_rule(name.substr(dash + 1), rule)) {
      return std::make_unique<ProactiveScheduler>(crit, rule, estimator);
    }
  }
  throw std::invalid_argument("make_scheduler: unknown heuristic '" +
                              std::string(name) + "'");
}

}  // namespace tcgrid::sched
