// The four selection metrics of §VI-A and the three proactive criteria of
// §VI-B, expressed as scores where *larger is better*.
#pragma once

#include <algorithm>
#include <string_view>

#include "sched/estimator.hpp"

namespace tcgrid::sched {

/// Incremental task-placement rule (defines the four passive heuristics).
enum class Rule {
  IP,   ///< maximize probability of success
  IE,   ///< minimize expected completion time
  IY,   ///< maximize yield P / (t + E)
  IAY,  ///< maximize apparent yield P / E
};

/// Proactive reconfiguration criterion. AY is excluded by the paper (§VI-B):
/// it violates the stability constraint and would thrash.
enum class Criterion {
  P,  ///< probability of success
  E,  ///< expected completion time (smaller is better -> negated score)
  Y,  ///< yield
};

[[nodiscard]] constexpr std::string_view to_string(Rule r) noexcept {
  switch (r) {
    case Rule::IP: return "IP";
    case Rule::IE: return "IE";
    case Rule::IY: return "IY";
    case Rule::IAY: return "IAY";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Criterion c) noexcept {
  switch (c) {
    case Criterion::P: return "P";
    case Criterion::E: return "E";
    case Criterion::Y: return "Y";
  }
  return "?";
}

/// Score of an estimate under a placement rule; `t_elapsed` is the time
/// already spent in the current iteration (used by the yield).
[[nodiscard]] inline double rule_score(Rule rule, const IterationEstimate& est,
                                       long t_elapsed) {
  // E >= 1 for any non-empty workload, but guard the denominators anyway.
  const double e = std::max(est.e_time, 1e-12);
  switch (rule) {
    case Rule::IP: return est.p_success;
    case Rule::IE: return -e;
    case Rule::IY: return est.p_success / (static_cast<double>(t_elapsed) + e);
    case Rule::IAY: return est.p_success / e;
  }
  return 0.0;
}

/// Score of an estimate under a proactive criterion (same conventions).
[[nodiscard]] inline double criterion_score(Criterion crit, const IterationEstimate& est,
                                            long t_elapsed) {
  switch (crit) {
    case Criterion::P: return rule_score(Rule::IP, est, t_elapsed);
    case Criterion::E: return rule_score(Rule::IE, est, t_elapsed);
    case Criterion::Y: return rule_score(Rule::IY, est, t_elapsed);
  }
  return 0.0;
}

}  // namespace tcgrid::sched
