// Bounded bi-clique search: does the availability matrix contain an
// all-ones a x b submatrix (a processors simultaneously UP during b slots)?
//
// This is the certificate structure of Theorem 4.1 — deciding it is NP-hard
// in general (reduction from ENCD), so the solver is a branch-and-bound
// exact search meant for small instances (tests, the offline example, and
// sanity bounds for heuristic schedules).
#pragma once

#include <vector>

#include "offline/instance.hpp"

namespace tcgrid::offline {

struct BicliqueResult {
  bool found = false;
  std::vector<int> procs;  ///< the a chosen processors (row indices)
  std::vector<int> slots;  ///< b of the common UP slots (column indices)
};

/// Exact search for `a` rows whose common UP-slot intersection has size
/// >= `b`. Rows are tried in decreasing popcount order with intersection-
/// cardinality pruning. Worst case exponential in `procs`.
[[nodiscard]] BicliqueResult find_biclique(const OfflineInstance& inst, int a, int b);

}  // namespace tcgrid::offline
