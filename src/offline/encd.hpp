// The Exact Node Cardinality Decision (ENCD) problem and the Theorem 4.1
// reductions from it to OFFLINE-COUPLED.
//
// ENCD (Dawande et al. 2001): given a bipartite graph G = (V u W, E) and
// integers a, b, does G contain a bi-clique with exactly a nodes in V and
// b nodes in W?
//
// Reduction (i), mu = 1:    processor i is UP at slot j iff (v_i, w_j) in E;
//                           m = a, w = b.
// Reduction (ii), mu = inf: same matrix followed by |W|+1 all-UP slots;
//                           m = a, w = b + |W| + 1.
//
// Tests verify both reductions against a brute-force ENCD oracle, which is
// the executable content of the paper's NP-hardness proof.
#pragma once

#include <vector>

#include "offline/instance.hpp"
#include "util/rng.hpp"

namespace tcgrid::offline {

/// Bipartite graph on V (left, size `left`) and W (right, size `right`).
class BipartiteGraph {
 public:
  BipartiteGraph(int left, int right)
      : left_(left), right_(right),
        adj_(static_cast<std::size_t>(left),
             std::vector<bool>(static_cast<std::size_t>(right), false)) {}

  [[nodiscard]] int left() const noexcept { return left_; }
  [[nodiscard]] int right() const noexcept { return right_; }

  void add_edge(int v, int w) {
    adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)] = true;
  }
  [[nodiscard]] bool edge(int v, int w) const {
    return adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
  }

  /// Erdos–Renyi random bipartite graph (each edge present w.p. `density`).
  [[nodiscard]] static BipartiteGraph random(int left, int right, double density,
                                             util::Rng& rng);

 private:
  int left_, right_;
  std::vector<std::vector<bool>> adj_;
};

/// Theorem 4.1 (i): ENCD instance -> OFFLINE-COUPLED(mu = 1) instance.
[[nodiscard]] OfflineInstance encd_to_offline_mu1(const BipartiteGraph& g);

/// Theorem 4.1 (ii): ENCD instance -> OFFLINE-COUPLED(mu = inf) instance.
/// The matching workload is w = b + |W| + 1 (see the paper's proof).
[[nodiscard]] OfflineInstance encd_to_offline_muinf(const BipartiteGraph& g);

/// Brute-force ENCD oracle: does G contain a bi-clique with exactly a nodes
/// in V and b in W? Exponential in `left`; for tests and small instances.
[[nodiscard]] bool encd_brute_force(const BipartiteGraph& g, int a, int b);

}  // namespace tcgrid::offline
