#include "offline/encd.hpp"

#include <functional>

namespace tcgrid::offline {

BipartiteGraph BipartiteGraph::random(int left, int right, double density,
                                      util::Rng& rng) {
  BipartiteGraph g(left, right);
  for (int v = 0; v < left; ++v) {
    for (int w = 0; w < right; ++w) {
      if (rng.uniform01() < density) g.add_edge(v, w);
    }
  }
  return g;
}

OfflineInstance encd_to_offline_mu1(const BipartiteGraph& g) {
  OfflineInstance inst(g.left(), g.right());
  for (int v = 0; v < g.left(); ++v) {
    for (int w = 0; w < g.right(); ++w) {
      if (g.edge(v, w)) inst.set_up(v, w);
    }
  }
  return inst;
}

OfflineInstance encd_to_offline_muinf(const BipartiteGraph& g) {
  // N = 2|W| + 1: the original |W| columns followed by |W|+1 all-UP slots.
  const int extra = g.right() + 1;
  OfflineInstance inst(g.left(), g.right() + extra);
  for (int v = 0; v < g.left(); ++v) {
    for (int w = 0; w < g.right(); ++w) {
      if (g.edge(v, w)) inst.set_up(v, w);
    }
    for (int t = g.right(); t < g.right() + extra; ++t) inst.set_up(v, t);
  }
  return inst;
}

bool encd_brute_force(const BipartiteGraph& g, int a, int b) {
  if (a < 1 || b < 1 || a > g.left() || b > g.right()) return false;
  // Choose every a-subset of V; a bi-clique with exactly b right nodes
  // exists iff the common neighborhood has size >= b (any b of them do).
  std::vector<int> chosen;
  std::function<bool(int)> rec = [&](int next) -> bool {
    if (static_cast<int>(chosen.size()) == a) {
      int common = 0;
      for (int w = 0; w < g.right(); ++w) {
        bool all = true;
        for (int v : chosen) {
          if (!g.edge(v, w)) {
            all = false;
            break;
          }
        }
        if (all) ++common;
      }
      return common >= b;
    }
    for (int v = next; v < g.left(); ++v) {
      if (g.left() - v < a - static_cast<int>(chosen.size())) return false;
      chosen.push_back(v);
      if (rec(v + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return rec(0);
}

}  // namespace tcgrid::offline
