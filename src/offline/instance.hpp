// The off-line scheduling problem of §IV: availability is known in advance
// as a p x N boolean matrix (UP or not), and one asks whether m workers can
// be simultaneously UP during w (not necessarily consecutive) slots.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/state.hpp"

namespace tcgrid::offline {

/// Dynamic bitset over time slots (columns of the availability matrix).
class SlotSet {
 public:
  explicit SlotSet(std::size_t bits = 0) : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// In-place intersection; both operands must have equal size.
  void intersect(const SlotSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<int> indices() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < bits_; ++i) {
      if (test(i)) out.push_back(static_cast<int>(i));
    }
    return out;
  }

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

/// Off-line availability: one SlotSet of UP slots per processor.
class OfflineInstance {
 public:
  OfflineInstance(int procs, int slots) : slots_(slots) {
    rows_.assign(static_cast<std::size_t>(procs), SlotSet(static_cast<std::size_t>(slots)));
  }

  [[nodiscard]] int procs() const noexcept { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int slots() const noexcept { return slots_; }

  void set_up(int proc, int slot) { rows_[static_cast<std::size_t>(proc)].set(static_cast<std::size_t>(slot)); }
  [[nodiscard]] bool up(int proc, int slot) const {
    return rows_[static_cast<std::size_t>(proc)].test(static_cast<std::size_t>(slot));
  }
  [[nodiscard]] const SlotSet& row(int proc) const {
    return rows_[static_cast<std::size_t>(proc)];
  }

  /// Build from a recorded 3-state timeline (UP -> available).
  [[nodiscard]] static OfflineInstance from_timeline(
      const std::vector<std::vector<markov::State>>& timeline);

 private:
  int slots_;
  std::vector<SlotSet> rows_;
};

}  // namespace tcgrid::offline
