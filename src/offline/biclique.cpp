#include "offline/biclique.hpp"

#include <algorithm>
#include <numeric>

namespace tcgrid::offline {

namespace {

struct Search {
  const OfflineInstance& inst;
  int a;  // processors required
  int b;  // common slots required
  std::vector<int> order;  // row indices, largest UP-count first
  std::vector<int> chosen;
  BicliqueResult result;

  bool recurse(std::size_t next, const SlotSet& inter) {
    if (static_cast<int>(chosen.size()) == a) {
      result.found = true;
      result.procs = chosen;
      auto idx = inter.indices();
      idx.resize(static_cast<std::size_t>(b));
      result.slots = std::move(idx);
      return true;
    }
    const int still_needed = a - static_cast<int>(chosen.size());
    if (static_cast<int>(order.size() - next) < still_needed) return false;

    for (std::size_t i = next; i < order.size(); ++i) {
      // Even taking every remaining row must leave enough candidates.
      if (static_cast<int>(order.size() - i) < still_needed) return false;
      SlotSet next_inter = inter;
      next_inter.intersect(inst.row(order[i]));
      if (static_cast<int>(next_inter.count()) < b) continue;
      chosen.push_back(order[i]);
      if (recurse(i + 1, next_inter)) return true;
      chosen.pop_back();
    }
    return false;
  }
};

}  // namespace

BicliqueResult find_biclique(const OfflineInstance& inst, int a, int b) {
  BicliqueResult empty;
  if (a < 1 || b < 1 || a > inst.procs() || b > inst.slots()) return empty;

  Search s{inst, a, b, {}, {}, {}};
  s.order.resize(static_cast<std::size_t>(inst.procs()));
  std::iota(s.order.begin(), s.order.end(), 0);
  // Rows with many UP slots first: deep intersections stay large longer and
  // failures prune earlier.
  std::stable_sort(s.order.begin(), s.order.end(), [&](int x, int y) {
    return inst.row(x).count() > inst.row(y).count();
  });
  // Drop rows that cannot participate at all.
  std::erase_if(s.order, [&](int r) { return static_cast<int>(inst.row(r).count()) < b; });

  SlotSet all(static_cast<std::size_t>(inst.slots()));
  for (int t = 0; t < inst.slots(); ++t) all.set(static_cast<std::size_t>(t));
  if (!s.recurse(0, all)) return empty;
  std::sort(s.result.procs.begin(), s.result.procs.end());
  return s.result;
}

}  // namespace tcgrid::offline
