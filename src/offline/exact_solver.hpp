// Exact decision procedures for OFFLINE-COUPLED (paper §IV).
//
// OFFLINE-COUPLED(mu = 1):  no communications, identical workers (w_q = w),
// one task per worker — feasible iff m workers are simultaneously UP during
// at least w slots.
//
// OFFLINE-COUPLED(mu = inf): workers may stack tasks — feasible iff for some
// j >= 1, ceil(m/j) workers are simultaneously UP during j*w slots.
#pragma once

#include "offline/biclique.hpp"
#include "offline/instance.hpp"

namespace tcgrid::offline {

/// Decision + certificate for the mu = 1 variant.
[[nodiscard]] BicliqueResult solve_mu1(const OfflineInstance& inst, int m, int w);

/// Decision + certificate for the mu = inf variant. On success,
/// `tasks_per_worker` gives the stacking factor j used by the certificate.
struct MuInfResult {
  bool found = false;
  int tasks_per_worker = 0;  ///< j
  BicliqueResult certificate;
};
[[nodiscard]] MuInfResult solve_muinf(const OfflineInstance& inst, int m, int w);

/// Largest w for which the mu = 1 problem is feasible (0 if even w = 1 is
/// not). Feasibility is monotone decreasing in w, so binary search applies.
[[nodiscard]] int max_coupled_slots(const OfflineInstance& inst, int m);

}  // namespace tcgrid::offline
