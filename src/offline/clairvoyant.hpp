// Clairvoyant scheduling: the paper's §IV off-line setting made operational.
//
// Theorem 4.1 shows that scheduling optimally with full knowledge of future
// availability is NP-hard, so no polynomial reference is exact. This module
// provides the strong greedy reference the evaluation can afford: a
// scheduler that *knows the entire availability timeline* and places tasks
// incrementally, scoring every candidate configuration by its exact
// simulated completion slot (deterministic forward replay of the engine's
// semantics). On-line heuristics can then be measured against a clairvoyant
// — the gap quantifies how much the lack of future knowledge costs.
#pragma once

#include <optional>

#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"
#include "platform/platform.hpp"
#include "platform/trace_io.hpp"
#include "sim/scheduler.hpp"

namespace tcgrid::offline {

/// Deterministically replay one fixed configuration against a known
/// timeline, mirroring the engine's semantics (enrollment-order service
/// under ncom, lock-step compute, RECLAIMED pauses, DOWN aborts).
///
/// Returns the slot at which the iteration's last compute slot lands, or -1
/// if some enrolled worker goes DOWN (or the timeline ends) first.
/// `holdings` is the per-processor possession snapshot at `start` (not
/// modified). Slots beyond the timeline are treated as all-UP, matching
/// platform::FixedAvailability.
[[nodiscard]] long replay_completion(const platform::Platform& platform,
                                     const model::Application& app,
                                     const platform::StateTimeline& timeline,
                                     std::span<const model::Holdings> holdings,
                                     const model::Configuration& config, long start,
                                     long horizon);

/// Passive scheduler with perfect future knowledge: builds a configuration
/// by incremental task placement, scoring candidates by replay_completion.
/// Use with a platform::FixedAvailability over the *same* timeline.
class ClairvoyantScheduler final : public sim::Scheduler {
 public:
  ClairvoyantScheduler(const platform::Platform& platform,
                       const model::Application& app,
                       platform::StateTimeline timeline);

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return "CLAIRVOYANT"; }

 private:
  const platform::Platform& platform_;
  const model::Application& app_;
  platform::StateTimeline timeline_;
};

}  // namespace tcgrid::offline
