#include "offline/exact_solver.hpp"

namespace tcgrid::offline {

BicliqueResult solve_mu1(const OfflineInstance& inst, int m, int w) {
  return find_biclique(inst, m, w);
}

MuInfResult solve_muinf(const OfflineInstance& inst, int m, int w) {
  MuInfResult out;
  for (int j = 1; j <= m; ++j) {
    const int workers = (m + j - 1) / j;  // ceil(m / j)
    const int slots = j * w;
    if (slots > inst.slots()) break;  // larger j only needs more slots
    BicliqueResult r = find_biclique(inst, workers, slots);
    if (r.found) {
      out.found = true;
      out.tasks_per_worker = j;
      out.certificate = std::move(r);
      return out;
    }
  }
  return out;
}

int max_coupled_slots(const OfflineInstance& inst, int m) {
  int lo = 0, hi = inst.slots();
  // Invariant: feasible at lo (w = 0 trivially), unknown above hi.
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (find_biclique(inst, m, mid).found) lo = mid;
    else hi = mid - 1;
  }
  return lo;
}

}  // namespace tcgrid::offline
