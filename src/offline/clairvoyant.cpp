#include "offline/clairvoyant.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace tcgrid::offline {

namespace {

markov::State state_at(const platform::StateTimeline& timeline, long slot, int q) {
  if (slot >= static_cast<long>(timeline.size())) return markov::State::Up;
  return timeline[static_cast<std::size_t>(slot)][static_cast<std::size_t>(q)];
}

}  // namespace

long replay_completion(const platform::Platform& platform,
                       const model::Application& app,
                       const platform::StateTimeline& timeline,
                       std::span<const model::Holdings> holdings,
                       const model::Configuration& config, long start,
                       long horizon) {
  if (config.empty()) return -1;

  // Local copies of the mutable per-worker transfer state.
  struct WorkerReplay {
    int proc;
    int tasks;
    bool has_program;
    int data_messages;
    long partial;
  };
  std::vector<WorkerReplay> workers;
  workers.reserve(config.size());
  for (const auto& a : config.assignments()) {
    const auto& h = holdings[static_cast<std::size_t>(a.proc)];
    // Candidates are priced as placed fresh: completed messages carry over,
    // in-flight partial transfers do not (they are lost on installation).
    workers.push_back({a.proc, a.tasks, h.has_program || app.t_prog == 0,
                       app.t_data == 0 ? a.tasks : h.data_messages, 0});
  }

  const long w_total = config.compute_slots(platform.speeds());
  long compute_done = 0;

  auto remaining = [&](const WorkerReplay& w) {
    long need = 0;
    if (!w.has_program && app.t_prog > 0) need += app.t_prog;
    need += static_cast<long>(std::max(0, w.tasks - w.data_messages)) * app.t_data;
    return std::max(0L, need - w.partial);
  };

  for (long t = start; t < horizon; ++t) {
    // DOWN anywhere aborts the replay.
    bool any_down = false;
    for (const auto& w : workers) {
      if (state_at(timeline, t, w.proc) == markov::State::Down) {
        any_down = true;
        break;
      }
    }
    if (any_down) return -1;

    bool comm_pending = false;
    for (const auto& w : workers) {
      if (remaining(w) > 0) {
        comm_pending = true;
        break;
      }
    }

    if (comm_pending) {
      int served = 0;
      for (auto& w : workers) {
        if (served >= platform.ncom()) break;
        if (state_at(timeline, t, w.proc) != markov::State::Up) continue;
        if (remaining(w) == 0) continue;
        const bool program = !w.has_program && app.t_prog > 0;
        ++w.partial;
        const long len = program ? app.t_prog : app.t_data;
        if (w.partial >= len) {
          w.partial = 0;
          if (program) w.has_program = true;
          else ++w.data_messages;
        }
        ++served;
      }
      continue;
    }

    // Compute phase: progress only when every enrolled worker is UP.
    bool all_up = true;
    for (const auto& w : workers) {
      if (state_at(timeline, t, w.proc) != markov::State::Up) {
        all_up = false;
        break;
      }
    }
    if (all_up && ++compute_done >= w_total) return t;
  }
  return -1;
}

ClairvoyantScheduler::ClairvoyantScheduler(const platform::Platform& platform,
                                           const model::Application& app,
                                           platform::StateTimeline timeline)
    : platform_(platform), app_(app), timeline_(std::move(timeline)) {}

std::optional<model::Configuration> ClairvoyantScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) return std::nullopt;
  const int p = platform_.size();
  const int m = app_.num_tasks;
  // Give configurations a chance to finish after the scripted horizon (all
  // UP there), but never replay forever.
  const long horizon = static_cast<long>(timeline_.size()) +
                       10L * (app_.t_prog + app_.t_data * m + 1);

  model::Configuration cfg;
  std::vector<int> loads(static_cast<std::size_t>(p), 0);
  for (int task = 0; task < m; ++task) {
    int best = -1;
    long best_finish = std::numeric_limits<long>::max();
    for (int q = 0; q < p; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= platform_.proc(q).max_tasks) continue;
      model::Configuration candidate = cfg;
      candidate.add_task(q);
      const long finish = replay_completion(platform_, app_, timeline_,
                                            view.holdings, candidate, view.slot,
                                            horizon);
      if (finish >= 0 && finish < best_finish) {
        best_finish = finish;
        best = q;
      }
    }
    if (best < 0) return std::nullopt;  // no candidate can ever finish
    cfg.add_task(best);
    ++loads[static_cast<std::size_t>(best)];
  }
  return cfg;
}

}  // namespace tcgrid::offline
