#include "offline/instance.hpp"

#include <stdexcept>

namespace tcgrid::offline {

OfflineInstance OfflineInstance::from_timeline(
    const std::vector<std::vector<markov::State>>& timeline) {
  if (timeline.empty()) throw std::invalid_argument("from_timeline: empty timeline");
  const int slots = static_cast<int>(timeline.size());
  const int procs = static_cast<int>(timeline.front().size());
  OfflineInstance inst(procs, slots);
  for (int t = 0; t < slots; ++t) {
    if (static_cast<int>(timeline[static_cast<std::size_t>(t)].size()) != procs) {
      throw std::invalid_argument("from_timeline: ragged timeline");
    }
    for (int q = 0; q < procs; ++q) {
      if (timeline[static_cast<std::size_t>(t)][static_cast<std::size_t>(q)] ==
          markov::State::Up) {
        inst.set_up(q, t);
      }
    }
  }
  return inst;
}

}  // namespace tcgrid::offline
