#include "obs/obs.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace tcgrid::obs {

namespace {

std::atomic<bool> g_enabled{false};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped_label(std::string_view v, std::string& out) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_label_block(const Labels& labels, std::string& out) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped_label(v, out);
    out += '"';
  }
  out += '}';
}

/// "le" bound rendered for exposition ("+Inf" for the tail bucket).
std::string le_string(int bucket) {
  if (bucket >= Histogram::kBuckets - 1) return "+Inf";
  return std::to_string(Histogram::bucket_le(bucket));
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void configure(const Options& options) {
  g_enabled.store(options.enabled, std::memory_order_relaxed);
  Tracer& tracer = Tracer::instance();
  if (options.trace_path.empty()) tracer.close();
  else tracer.open(options.trace_path);
}

std::uint64_t steady_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------- registry ----

/// One thread's private cell space. Cells live in fixed 4096-cell blocks so
/// the directory can grow (new metrics, e.g. per-tenant histograms) without
/// ever moving a cell a writer might be touching: a block, once published,
/// is immortal and address-stable. The block table itself is a fixed array
/// of atomic pointers — readers load a slot's block with acquire and never
/// take the registry mutex.
struct Registry::Shard {
  static constexpr std::uint32_t kBlockCells = 4096;
  static constexpr std::uint32_t kMaxBlocks = 64;  ///< 256Ki cells ≈ 6k histograms

  struct Block {
    std::array<std::atomic<std::uint64_t>, kBlockCells> cells{};
  };

  std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
  /// Leased by exactly one live thread at a time; released (but the counts
  /// kept) on thread exit, so short-lived serve handler threads reuse
  /// shards instead of growing the pool without bound.
  std::atomic<bool> leased{false};

  std::atomic<std::uint64_t>& cell(std::uint32_t slot) {
    Block* block = blocks[slot / kBlockCells].load(std::memory_order_acquire);
    return block->cells[slot % kBlockCells];
  }
};

struct Registry::Entry {
  std::string name;
  Labels labels;
  Kind kind = Kind::Counter;
  std::uint32_t base = 0;   ///< first cell slot (counter/histogram)
  std::uint32_t cells = 0;  ///< cell count (0 for gauges)
  std::atomic<long long> gauge{0};
};

struct Registry::Impl {
  std::mutex mu;
  std::vector<std::unique_ptr<Entry>> entries;   // stable addresses (gauge cells)
  std::vector<std::unique_ptr<Shard>> shards;    // stable addresses (leases)
  std::uint32_t next_slot = 0;
  std::uint32_t capacity_blocks = 0;  ///< blocks allocated in every shard
};

Registry::Registry() : impl_(new Impl()) {}

Registry& Registry::instance() {
  static Registry* reg = new Registry();  // immortal: outlives static handles
  return *reg;
}

Registry::Entry& Registry::entry_for(std::string_view name, Labels&& labels,
                                     Kind kind, std::uint32_t cells_needed) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& entry : impl_->entries) {
    if (entry->name == name && entry->labels == labels) {
      if (entry->kind != kind) {
        throw std::invalid_argument("obs: metric '" + entry->name +
                                    "' re-registered with a different kind");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::move(labels);
  entry->kind = kind;
  entry->cells = cells_needed;
  if (cells_needed > 0) {
    entry->base = impl_->next_slot;
    impl_->next_slot += cells_needed;
    const std::uint32_t blocks_needed =
        (impl_->next_slot + Shard::kBlockCells - 1) / Shard::kBlockCells;
    if (blocks_needed > Shard::kMaxBlocks) {
      throw std::length_error("obs: metric cell space exhausted");
    }
    // Publish any new blocks into every existing shard before the handle
    // escapes: a writer can only hold a slot it got from a handle, and the
    // handle is only returned after this store.
    for (const auto& shard : impl_->shards) {
      for (std::uint32_t b = impl_->capacity_blocks; b < blocks_needed; ++b) {
        shard->blocks[b].store(new Shard::Block(), std::memory_order_release);
      }
    }
    if (blocks_needed > impl_->capacity_blocks) impl_->capacity_blocks = blocks_needed;
  }
  impl_->entries.push_back(std::move(entry));
  return *impl_->entries.back();
}

Counter Registry::counter(std::string_view name, Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), Kind::Counter, 1);
  return Counter(this, entry.base);
}

Histogram Registry::histogram(std::string_view name, Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), Kind::Histogram,
                           static_cast<std::uint32_t>(Histogram::kBuckets) + 2);
  return Histogram(this, entry.base);
}

Gauge Registry::gauge(std::string_view name, Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), Kind::Gauge, 0);
  return Gauge(&entry.gauge);
}

Registry::Shard& Registry::local_shard() {
  // Thread-exit releases the lease but keeps the shard (and its counts):
  // totals survive worker churn, and the next thread to start counting
  // reuses the slot instead of growing the pool.
  struct Lease {
    Shard* shard = nullptr;
    Lease() {
      Registry& reg = Registry::instance();
      std::lock_guard<std::mutex> lock(reg.impl_->mu);
      for (const auto& candidate : reg.impl_->shards) {
        bool expected = false;
        if (candidate->leased.compare_exchange_strong(expected, true)) {
          shard = candidate.get();
          break;
        }
      }
      if (shard == nullptr) {
        auto fresh = std::make_unique<Shard>();
        for (std::uint32_t b = 0; b < reg.impl_->capacity_blocks; ++b) {
          fresh->blocks[b].store(new Shard::Block(), std::memory_order_release);
        }
        fresh->leased.store(true, std::memory_order_relaxed);
        shard = fresh.get();
        reg.impl_->shards.push_back(std::move(fresh));
      }
    }
    ~Lease() {
      if (shard != nullptr) shard->leased.store(false, std::memory_order_release);
    }
  };
  thread_local Lease lease;
  return *lease.shard;
}

std::atomic<std::uint64_t>& Registry::cell(std::uint32_t slot) {
  return local_shard().cell(slot);
}

void Counter::inc(std::uint64_t n) const noexcept {
  if (reg_ == nullptr || !enabled()) return;
  reg_->cell(slot_).fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(long long v) const noexcept {
  if (cell_ == nullptr || !enabled()) return;
  cell_->store(v, std::memory_order_relaxed);
}

void Gauge::add(long long d) const noexcept {
  if (cell_ == nullptr || !enabled()) return;
  cell_->fetch_add(d, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t value) const noexcept {
  if (reg_ == nullptr || !enabled()) return;
  Registry::Shard& shard = reg_->local_shard();
  const auto bucket = static_cast<std::uint32_t>(bucket_of(value));
  shard.cell(base_ + bucket).fetch_add(1, std::memory_order_relaxed);
  shard.cell(base_ + kBuckets).fetch_add(1, std::memory_order_relaxed);
  shard.cell(base_ + kBuckets + 1).fetch_add(value, std::memory_order_relaxed);
}

void Histogram::merge(const LocalHistogram& local) const noexcept {
  if (reg_ == nullptr || !enabled() || local.count() == 0) return;
  Registry::Shard& shard = reg_->local_shard();
  const auto& buckets = local.buckets();
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[static_cast<std::size_t>(b)] == 0) continue;
    shard.cell(base_ + static_cast<std::uint32_t>(b))
        .fetch_add(buckets[static_cast<std::size_t>(b)], std::memory_order_relaxed);
  }
  shard.cell(base_ + kBuckets).fetch_add(local.count(), std::memory_order_relaxed);
  shard.cell(base_ + kBuckets + 1).fetch_add(local.sum(), std::memory_order_relaxed);
}

Snapshot Registry::snapshot() {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.metrics.reserve(impl_->entries.size());
  for (const auto& entry : impl_->entries) {
    MetricSnapshot m;
    m.name = entry->name;
    m.labels = entry->labels;
    m.kind = entry->kind;
    switch (entry->kind) {
      case Kind::Gauge:
        m.gauge = entry->gauge.load(std::memory_order_relaxed);
        break;
      case Kind::Counter:
        for (const auto& shard : impl_->shards) {
          m.value += shard->cell(entry->base).load(std::memory_order_relaxed);
        }
        break;
      case Kind::Histogram: {
        m.buckets.assign(static_cast<std::size_t>(Histogram::kBuckets), 0);
        for (const auto& shard : impl_->shards) {
          for (int b = 0; b < Histogram::kBuckets; ++b) {
            m.buckets[static_cast<std::size_t>(b)] +=
                shard->cell(entry->base + static_cast<std::uint32_t>(b))
                    .load(std::memory_order_relaxed);
          }
          m.count += shard->cell(entry->base + Histogram::kBuckets)
                         .load(std::memory_order_relaxed);
          m.sum += shard->cell(entry->base + Histogram::kBuckets + 1)
                       .load(std::memory_order_relaxed);
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& shard : impl_->shards) {
    for (std::uint32_t b = 0; b < impl_->capacity_blocks; ++b) {
      Shard::Block* block = shard->blocks[b].load(std::memory_order_acquire);
      for (auto& c : block->cells) c.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& entry : impl_->entries) {
    entry->gauge.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- snapshots ----

const MetricSnapshot* Snapshot::find(std::string_view name,
                                     const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

util::json::Value Snapshot::to_json() const {
  util::json::Array out;
  out.reserve(metrics.size());
  for (const MetricSnapshot& m : metrics) {
    util::json::Object obj;
    obj.emplace_back("name", m.name);
    util::json::Object labels;
    for (const auto& [k, v] : m.labels) labels.emplace_back(k, v);
    obj.emplace_back("labels", std::move(labels));
    obj.emplace_back("kind", kind_name(m.kind));
    switch (m.kind) {
      case Kind::Counter:
        obj.emplace_back("value", m.value);
        break;
      case Kind::Gauge:
        obj.emplace_back("value", m.gauge);
        break;
      case Kind::Histogram: {
        obj.emplace_back("count", m.count);
        obj.emplace_back("sum", m.sum);
        util::json::Array buckets;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t n = m.buckets[static_cast<std::size_t>(b)];
          if (n == 0) continue;
          util::json::Object bucket;
          bucket.emplace_back("le", le_string(b));
          bucket.emplace_back("n", n);
          buckets.push_back(std::move(bucket));
        }
        obj.emplace_back("buckets", std::move(buckets));
        break;
      }
    }
    out.push_back(std::move(obj));
  }
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  std::vector<std::string_view> typed;  // names whose # TYPE line is out
  for (const MetricSnapshot& m : metrics) {
    bool seen = false;
    for (const std::string_view t : typed) seen = seen || t == m.name;
    if (!seen) {
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += kind_name(m.kind);
      out += '\n';
      typed.push_back(m.name);
    }
    switch (m.kind) {
      case Kind::Counter:
      case Kind::Gauge: {
        out += m.name;
        append_label_block(m.labels, out);
        out += ' ';
        out += m.kind == Kind::Counter ? std::to_string(m.value)
                                       : std::to_string(m.gauge);
        out += '\n';
        break;
      }
      case Kind::Histogram: {
        std::uint64_t cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += m.buckets[static_cast<std::size_t>(b)];
          // Every non-empty bucket plus the +Inf terminal; empty interior
          // buckets are elided (cumulative form loses nothing).
          if (m.buckets[static_cast<std::size_t>(b)] == 0 &&
              b != Histogram::kBuckets - 1) {
            continue;
          }
          Labels with_le = m.labels;
          with_le.emplace_back("le", le_string(b));
          out += m.name;
          out += "_bucket";
          append_label_block(with_le, out);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += m.name;
        out += "_sum";
        append_label_block(m.labels, out);
        out += ' ';
        out += std::to_string(m.sum);
        out += '\n';
        out += m.name;
        out += "_count";
        append_label_block(m.labels, out);
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------------ tracer ----

struct Tracer::Impl {
  std::mutex mu;
  std::ofstream out;
};

Tracer& Tracer::instance() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    t->impl_ = new Impl();
    return t;
  }();
  return *tracer;
}

void Tracer::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->out.is_open()) impl_->out.close();
  impl_->out.open(path, std::ios::app);
  if (!impl_->out.is_open()) {
    active_.store(false, std::memory_order_relaxed);
    throw std::runtime_error("obs: cannot open trace file " + path);
  }
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::close() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  active_.store(false, std::memory_order_relaxed);
  if (impl_->out.is_open()) impl_->out.close();
}

void Tracer::emit(std::string_view event, util::json::Object fields) {
  if (!active()) return;
  util::json::Object record;
  record.reserve(fields.size() + 2);
  record.emplace_back(
      "ts_us",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()));
  record.emplace_back("ev", std::string(event));
  for (auto& member : fields) record.push_back(std::move(member));
  std::string line = util::json::dump(util::json::Value(std::move(record)));
  line += '\n';
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->out.is_open()) return;  // closed between the check and here
  impl_->out << line;
  impl_->out.flush();
}

// -------------------------------------------------------------------- span ----

Span::Span(std::string_view event)
    : active_(Tracer::instance().active()), event_(event) {
  if (active_) start_us_ = steady_now_us();
}

void Span::field(std::string key, util::json::Value value) {
  if (!active_) return;
  fields_.emplace_back(std::move(key), std::move(value));
}

void Span::finish() {
  if (!active_) return;
  active_ = false;
  const std::uint64_t dur_us = steady_now_us() - start_us_;
  fields_.emplace_back("us", dur_us);
  Tracer::instance().emit(event_, std::move(fields_));
}

}  // namespace tcgrid::obs
