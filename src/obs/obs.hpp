// tcgrid::obs — the unified observability substrate (DESIGN.md §12).
//
// Two halves:
//
//   * a process-wide METRICS REGISTRY of counters, gauges and fixed-bucket
//     log₂-scale histograms. Updates go through per-thread shards — one
//     relaxed fetch_add on a cell only the calling thread writes — so the
//     hot path takes no lock and shares no cache line with other writers;
//     a scrape (snapshot()) merges every shard's cells under the registry
//     mutex. Counts are exact: cells are 64-bit atomics, so a concurrent
//     scrape can observe a slightly stale but never torn value, and once
//     writers quiesce the merged totals equal the updates issued
//     (tests/obs_test.cpp hammers this from many threads);
//
//   * a structured SPAN/EVENT TRACER that appends one canonical-JSON line
//     per event (util/json's deterministic dump — the same serializer the
//     serve protocol and the bench artifacts use) to a configured JSONL
//     file. Spans are RAII timers that carry caller-attached fields.
//
// The whole layer sits behind one switch: obs::configure({.enabled = ...}).
// When disabled (the default), every instrument site reduces to one relaxed
// atomic load and an untaken branch — bench_sweep measures the disabled
// path at parity with the pre-obs binary and the enabled path within the
// <2% budget (BENCH_sweep.json "obs" section).
//
// Registration (Registry::counter/gauge/histogram) is idempotent by
// (name, labels) and intended for function-local static handles at the
// instrument site; it takes the registry mutex, the returned handles never
// do. Metrics registered anywhere in the process appear in every scrape —
// which is exactly what the serve daemon's `metrics` verb exposes.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace tcgrid::obs {

// ------------------------------------------------------------- the switch ----

struct Options {
  /// Master enable for metric updates. Registration and scraping work
  /// regardless (a disabled process still exposes its registered series,
  /// with zero values), only the update hot paths are gated.
  bool enabled = false;
  /// When non-empty, (re)open the span/event tracer on this JSONL file
  /// (append). Empty closes it.
  std::string trace_path;
};

/// Install `options` process-wide. Safe to call at any time; enabling or
/// disabling mid-run simply starts/stops counting from that point.
void configure(const Options& options);

/// The master switch, as one relaxed load (the instrument-site fast path).
[[nodiscard]] bool enabled() noexcept;

// ---------------------------------------------------------------- metrics ----

/// Label set of a metric instance, e.g. {{"tenant", "alice"}}. Order is
/// preserved (it is part of the metric identity and the exposition order).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class Kind { Counter, Gauge, Histogram };

class Registry;
class LocalHistogram;

/// Monotone counter. Copyable value handle; inc() is lock-free (one relaxed
/// fetch_add on the calling thread's shard cell) and a no-op while obs is
/// disabled.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Point-in-time value (queue depths, in-flight counts). Gauges are a
/// single process-wide atomic, not sharded: set() must overwrite, and
/// set/add sites are low-frequency by construction. The handle stores the
/// entry-owned atomic's address, which is stable for the process lifetime.
class Gauge {
 public:
  Gauge() = default;
  void set(long long v) const noexcept;
  void add(long long d) const noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::atomic<long long>* cell) : cell_(cell) {}
  std::atomic<long long>* cell_ = nullptr;
};

/// Fixed-bucket log₂ histogram over non-negative integer observations
/// (microseconds, slots, bytes). Bucket b>0 covers [2^(b-1), 2^b - 1];
/// bucket 0 covers exactly {0}; the last bucket absorbs the tail. Two extra
/// cells track count and sum, so exposition carries mean and Prometheus
/// _sum/_count. observe() touches bucket+count+sum cells of the calling
/// thread's shard — three relaxed fetch_adds, no lock.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  Histogram() = default;
  void observe(std::uint64_t value) const noexcept;
  /// Fold a single-thread LocalHistogram tally in (one fetch_add per
  /// non-zero bucket) — the engine accumulates per-run tallies in plain
  /// locals and merges once per run.
  void merge(const LocalHistogram& local) const noexcept;

  [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::min(kBuckets - 1, static_cast<int>(std::bit_width(v)));
  }
  /// Inclusive upper bound of bucket b (UINT64_MAX for the tail bucket).
  [[nodiscard]] static std::uint64_t bucket_le(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= kBuckets - 1) return ~0ull;
    return (1ull << b) - 1;
  }

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t base) : reg_(reg), base_(base) {}
  Registry* reg_ = nullptr;
  std::uint32_t base_ = 0;  ///< cells [base_, base_+kBuckets+2): buckets, count, sum
};

/// Plain single-thread histogram tally (no atomics, no registry): the
/// shape Histogram::merge consumes. Used by the engine to tally
/// bulk-advance lengths at zero synchronization cost.
class LocalHistogram {
 public:
  void observe(std::uint64_t v) noexcept {
    ++buckets_[static_cast<std::size_t>(Histogram::bucket_of(v))];
    ++count_;
    sum_ += v;
  }
  void reset() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] const std::array<std::uint64_t, Histogram::kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, Histogram::kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Monotonic now in microseconds (steady clock) — the duration base every
/// instrument site uses, exposed so call sites stay one-liners.
[[nodiscard]] std::uint64_t steady_now_us() noexcept;

/// RAII latency timer: observes elapsed µs into a histogram on destruction.
/// Decides at construction — when obs is disabled then, the destructor does
/// nothing (no clock reads at all on the disabled path).
class ScopedTimer;

// ------------------------------------------------------------- snapshots ----

/// One metric instance, merged across shards at scrape time.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  Kind kind = Kind::Counter;
  std::uint64_t value = 0;   ///< counter total
  long long gauge = 0;       ///< gauge value
  std::uint64_t count = 0;   ///< histogram observation count
  std::uint64_t sum = 0;     ///< histogram observation sum
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts (NOT cumulative)
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  ///< registration order

  /// Lookup by (name, labels); nullptr when absent.
  [[nodiscard]] const MetricSnapshot* find(std::string_view name,
                                           const Labels& labels = {}) const;

  /// Machine form: an array of one object per metric, through util/json's
  /// canonical dump. Histogram buckets list only non-empty buckets as
  /// {"le": upper-bound (or "+Inf"), "n": count}.
  [[nodiscard]] util::json::Value to_json() const;

  /// Prometheus text exposition (TYPE comments, cumulative _bucket/_sum/
  /// _count series for histograms, escaped label values).
  [[nodiscard]] std::string to_prometheus() const;
};

// ---------------------------------------------------------------- registry ----

class Registry {
 public:
  /// The process-wide registry (never destroyed: instrument-site static
  /// handles and thread-exit shard releases may outlive main()).
  static Registry& instance();

  // Registration: idempotent by (name, labels); a kind mismatch on an
  // existing (name, labels) throws std::invalid_argument. Takes the
  // registry mutex — call once per site (function-local static handle),
  // not per update.
  Counter counter(std::string_view name, Labels labels = {});
  Histogram histogram(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});

  /// Merge every shard and gauge into a point-in-time snapshot. Concurrent
  /// updates are never torn (64-bit atomic cells); totals are exact once
  /// writers quiesce.
  [[nodiscard]] Snapshot snapshot();

  /// Zero every cell and gauge (tests and bench arms). The metric
  /// directory is preserved — handles stay valid. Callers are responsible
  /// for quiescing writers if they need the next scrape to be exact.
  void reset_values();

 private:
  friend class Counter;
  friend class Histogram;
  friend class Gauge;

  struct Shard;
  struct Entry;

  Registry();
  ~Registry() = delete;  // intentionally immortal

  Entry& entry_for(std::string_view name, Labels&& labels, Kind kind,
                   std::uint32_t cells_needed);
  Shard& local_shard();
  std::atomic<std::uint64_t>& cell(std::uint32_t slot);

  struct Impl;
  Impl* impl_;
};

// ----------------------------------------------------------------- tracer ----

/// Append-only structured event log: one canonical-JSON object per line.
/// Thread-safe (one mutex around the write); inactive until configure()
/// supplies a trace_path.
class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Emit {"ts_us": <wall clock µs>, "ev": event, ...fields}. No-op while
  /// inactive (check active() first to skip building fields).
  void emit(std::string_view event, util::json::Object fields);

  void open(const std::string& path);
  void close();

 private:
  Tracer() = default;
  ~Tracer() = delete;  // immortal, like the registry

  std::atomic<bool> active_{false};
  struct Impl;
  Impl* impl_ = nullptr;
};

/// RAII span: measures wall time from construction, emits one tracer event
/// with "us" (duration) plus attached fields on finish()/destruction.
/// Construction while the tracer is inactive makes every method a no-op.
class Span {
 public:
  explicit Span(std::string_view event);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  [[nodiscard]] bool active() const noexcept { return active_; }
  void field(std::string key, util::json::Value value);
  void finish();  ///< emit now (idempotent)

 private:
  bool active_ = false;
  std::string event_;
  std::uint64_t start_us_ = 0;
  util::json::Object fields_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& hist)
      : hist_(enabled() ? &hist : nullptr),
        start_us_(hist_ != nullptr ? steady_now_us() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(steady_now_us() - start_us_);
  }

 private:
  const Histogram* hist_;
  std::uint64_t start_us_;
};

}  // namespace tcgrid::obs
