// Session: the single entry point for running experiments.
//
// A Session owns the execution machinery the old drivers wired by hand —
// scenario instantiation, estimator construction and reuse, scheduler
// creation, engine setup, worker threads — behind three calls:
//
//   * run(spec, sinks)    — a full factorial sweep, streamed to ResultSinks;
//   * run_trial(...)      — one (scenario, heuristic, trial) paired run;
//   * run_custom(...)     — one run with a caller-supplied availability
//                           source and/or scheduler (scripted traces,
//                           clairvoyant references, ablation schedulers).
//
// Thread-safety contract (the rule formerly only stated as a comment in
// expt/runner.hpp, now enforced structurally):
//
//   * sched::Estimator is NOT thread-safe, and estimator cache warmth is the
//     dominant cost of a sweep. The session keeps one estimator cache PER
//     WORKER THREAD, keyed by scenario identity, so an estimator is only
//     ever touched by the thread that built it.
//   * ResultSink::consume and the progress callback may be invoked from
//     worker threads but are serialized under an internal mutex: no two
//     calls ever run concurrently, so unsynchronized sink/callback state is
//     safe. (Legacy expt::run_sweep inherits this guarantee.)
//   * run_trial / run_custom / scenario_for may be called from any ONE
//     thread at a time; concurrent calls into the same Session from
//     different user threads are serialized by the same per-thread caching
//     (each caller thread gets its own cache).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "api/options.hpp"
#include "api/sink.hpp"
#include "api/spec.hpp"
#include "markov/chain_stats.hpp"
#include "markov/persistent_stats.hpp"
#include "platform/availability.hpp"
#include "platform/realization.hpp"
#include "platform/scenario.hpp"
#include "scen/space.hpp"
#include "sched/estimator.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace tcgrid::api {

class Session {
 public:
  /// Options for single-run calls (run_trial / run_custom) and the defaults
  /// a sweep falls back to. ExperimentSpec::options wins inside run().
  /// options.store_dir opens (creating if needed) the persistent
  /// chain-statistics cache and layers the session store over it (DESIGN.md
  /// §14); throws std::invalid_argument when store_dir is set with
  /// shared_chain_stats off (there is no session store to back).
  explicit Session(Options options = {});

  /// Flushes the persistent store (best effort) and releases the caches.
  ~Session();

  /// Progress callback: (units completed, units total), where a unit is one
  /// (scenario, trial) — the sweep's scheduling grain — so a trial-major
  /// sweep reports trials x scenarios steps of smooth progress instead of
  /// one coarse tick per scenario. Serialized with sink consumption (see
  /// the thread-safety contract above).
  using Progress = std::function<void(std::size_t, std::size_t)>;

  struct RunStats {
    std::size_t scenarios = 0;    ///< scenarios simulated
    std::size_t rows = 0;         ///< trial outcomes streamed to sinks
    std::size_t units_total = 0;  ///< (scenario, trial) units in the spec
    std::size_t units_done = 0;   ///< units whose rows reached the sinks
    bool cancelled = false;       ///< the stop flag cut the sweep short
  };

  /// Run the spec, streaming every completed (heuristic, scenario, trial)
  /// outcome to each sink. Validates the spec up front (throws
  /// std::invalid_argument before any simulation starts).
  ///
  /// Cooperative cancellation: when `stop` is non-null, every worker checks
  /// it at (scenario, trial) unit boundaries — a unit already simulating
  /// finishes and its rows still reach the sinks (sinks never see a torn
  /// unit), pending units are skipped. run() then returns early with
  /// `cancelled = true` and the partial counts; the sinks' finish() is
  /// still invoked, so streamed files are flushed and well-formed.
  ///
  /// Execution is TRIAL-MAJOR (DESIGN.md §9): the scheduling unit is one
  /// (scenario, trial). The unit's availability realization is materialized
  /// once (platform::Realization, bounded by options.realization_budget;
  /// budget 0 or overflow falls back to live generation) and every
  /// requested heuristic runs against it on the same worker thread, so the
  /// generation + digest work of a trial is paid once instead of once per
  /// heuristic, and the thread's cached estimator stays warm across the
  /// unit. Results are bit-identical to live generation and independent of
  /// the thread count.
  ///
  /// Row-ordering guarantee for sinks: the rows of one (scenario, trial)
  /// unit arrive CONTIGUOUSLY, in the spec's heuristic order. Across units
  /// the order is completion order (thread-scheduling dependent) — sinks
  /// needing global order sort on the row coordinates (see sink.hpp).
  ///
  /// Lockstep trial batching (DESIGN.md §13): with options.trial_batch > 1
  /// the sweep re-chunks to (scenario, trial-range) work items of up to B
  /// trials and replays each heuristic over the whole range side by side
  /// (sim::TrialBatch) — one batchwide availability-horizon pass instead of
  /// B independent event scans, with the shared estimator caches staying
  /// hot across lanes. Results, row contents and the RunStats unit
  /// accounting are bit-identical to trial_batch == 1 (enforced by
  /// tests/batch_test.cpp and the bench_sweep digest gate); rows of a
  /// range arrive contiguously in trial-then-heuristic order, i.e. as the
  /// same B consecutive (scenario, trial) units the sequential executor
  /// would emit. Per-lane budget overflow falls back to live generation
  /// for that trial alone, exactly mirroring the sequential fallback.
  ///
  /// Sweeps populate the calling worker threads' scenario/estimator caches
  /// (that is what keeps estimators warm across the trials of a scenario);
  /// call clear_caches() between sweeps to release them. The entries are
  /// retained for the WHOLE run — an estimator's survival tables and build
  /// memo are some MBs each once hot — so split very large scenario
  /// populations into cells and clear_caches() between them to bound peak
  /// memory (the cells of a grid are the natural split).
  RunStats run(const ExperimentSpec& spec, const std::vector<ResultSink*>& sinks,
               const Progress& progress = nullptr,
               const std::atomic<bool>* stop = nullptr);

  /// One (scenario, trial) unit — the sweep's scheduling grain — run
  /// standalone: every heuristic in `heuristics` replayed against the
  /// unit's shared materialized realization (budget permitting, with the
  /// same live fallback as run()), returning the results in heuristic
  /// order. This is run()'s per-unit body made public: the serve daemon
  /// schedules units from many concurrent jobs across one fleet and calls
  /// this from its workers. Families arrive pre-resolved (resolve once per
  /// job/sweep; workers stay off the registry mutex). Safe to call
  /// concurrently from many threads — the scenario/estimator cache is per
  /// calling thread, exactly as in run(). `options` supplies the engine
  /// and realization knobs; the estimator eps remains session-level (the
  /// chain store is built once per session with options().eps).
  [[nodiscard]] std::vector<sim::SimulationResult> run_unit(
      const Options& options, const scen::AvailabilityFamily& availability,
      const std::shared_ptr<const scen::PlatformFamily>& platform_family,
      const platform::ScenarioParams& params,
      const std::vector<std::string>& heuristics, int trial);

  /// One paired trial: the availability realization is a pure function of
  /// (scenario space, scenario seed, trial), so every heuristic run with the
  /// same arguments faces the identical availability (the paper's paired
  /// comparison). The scenario and its estimator are cached per calling
  /// thread. If `trace` is non-null the engine records the activity trace
  /// into it.
  [[nodiscard]] sim::SimulationResult run_trial(const platform::ScenarioParams& params,
                                                std::string_view heuristic, int trial,
                                                sim::ActivityTrace* trace = nullptr);

  /// run_trial in an explicit scenario space: the platform comes from the
  /// space's platform family, the availability stream from its availability
  /// family (both resolved through the scen registry), while scheduler
  /// seeding and pairing are unchanged. The default space reproduces the
  /// two-argument overload bit for bit.
  [[nodiscard]] sim::SimulationResult run_trial(const scen::ScenarioSpace& space,
                                                const platform::ScenarioParams& params,
                                                std::string_view heuristic, int trial,
                                                sim::ActivityTrace* trace = nullptr);

  /// One run with a caller-supplied availability source and scheduler,
  /// using the session options for the engine knobs. The engine consumes
  /// the source in avail_block prefetch batches, so after the run
  /// `availability.position()` is past the last simulated slot by up to
  /// avail_block - 1 slots of prefetch overshoot (asserted in debug
  /// builds: simulated <= position < simulated + avail_block, relative to
  /// the source's pre-run position). Query position() before reusing a
  /// source; to continue a stream from the exact end of a run, construct a
  /// fresh source instead.
  [[nodiscard]] sim::SimulationResult run_custom(const platform::Platform& platform,
                                                 const model::Application& app,
                                                 platform::AvailabilitySource& availability,
                                                 sim::Scheduler& scheduler,
                                                 sim::ActivityTrace* trace = nullptr) const;

  /// run_custom with per-call option overrides (e.g. the ablation bench
  /// sweeping CommOrder without rebuilding a session).
  [[nodiscard]] static sim::SimulationResult run_custom(
      const Options& options, const platform::Platform& platform,
      const model::Application& app, platform::AvailabilitySource& availability,
      sim::Scheduler& scheduler, sim::ActivityTrace* trace = nullptr);

  /// The cached instantiation of a scenario (platform + application) for the
  /// calling thread. Valid until the session is destroyed.
  [[nodiscard]] const platform::Scenario& scenario_for(const platform::ScenarioParams& params);

  /// The calling thread's cached estimator for a scenario (built on first
  /// use with options().eps). Valid until the session is destroyed; never
  /// share it with another thread.
  [[nodiscard]] const sched::Estimator& estimator_for(const platform::ScenarioParams& params);

  /// Drop every thread's cached scenario/estimator entries, and (when
  /// options().shared_chain_stats) replace the shared chain-statistics
  /// store with a fresh one — the store's survival tables and set entries
  /// are where a long sweep's estimator memory actually lives. A long-lived
  /// session that sweeps many scenario populations otherwise retains one
  /// estimator per (thread, scenario) forever; call this between sweeps
  /// (cells) to bound memory. MUST NOT run concurrently with run /
  /// run_trial / scenario_for / estimator_for — references returned by
  /// those calls are invalidated.
  void clear_caches();

  /// Drop every thread's cached scenario/estimator entries but RETAIN the
  /// shared chain-statistics store: the next run rebuilds estimators whose
  /// every chain interns into a hit and whose set quads are already
  /// memoized. This is the serve daemon's resubmit shape (a new connection
  /// thread, a warm session) isolated as a primitive — bench_sweep's warm
  /// pass drives it to measure cross-request warmth, which within-sweep
  /// counters structurally cannot show (DESIGN.md §10). Same concurrency
  /// contract as clear_caches().
  void drop_estimator_caches();

  /// Observability of the session-shared chain-statistics store (DESIGN.md
  /// §10): distinct chains interned, intern dedup hits, multiset set-stats
  /// entries/hits/misses, published survival entries and resident bytes —
  /// the byte accounting counterpart of Options::realization_budget's
  /// budget, reported alongside cached_entries(). All zeros when
  /// shared_chain_stats is off (each estimator then owns a private store).
  /// Counters are cumulative until clear_caches() resets the store. Safe
  /// to call from any thread at any time (the store pointer is read under
  /// the cache mutex; the store itself is thread-safe).
  [[nodiscard]] markov::ChainStatsStore::Counters chain_store_counters();

  /// The session-shared store itself (nullptr when shared_chain_stats is
  /// off). Exposed for tests and benches; production code observes it
  /// through chain_store_counters(). Unlike that accessor, this returns a
  /// reference to the member: it MUST NOT be called concurrently with
  /// clear_caches(), which reassigns it.
  [[nodiscard]] const std::shared_ptr<markov::ChainStatsStore>& chain_store()
      const noexcept {
    return chain_store_;
  }

  /// Persist every newly computed chain-store entry to options().store_dir
  /// as one atomic generation (markov::PersistentChainStats::flush_from);
  /// returns the number of entries written, 0 when nothing is new or no
  /// store_dir is configured. Called automatically at the session quiesce
  /// points — end of run(), clear_caches() (BEFORE the store swap, so an
  /// eviction trades memory, not warmth), destruction — and safe to call
  /// from any thread at any time (the export snapshots concurrently mutated
  /// entries consistently; half-computed ones wait for the next flush).
  std::size_t flush_store();

  /// Counters of the persistent store (all zeros when store_dir is unset).
  /// Safe from any thread at any time.
  [[nodiscard]] markov::PersistentChainStats::Counters persistent_store_counters();

  /// The persistent backing store itself (nullptr when store_dir is unset).
  /// Exposed for tests and benches; never reassigned after construction.
  [[nodiscard]] const std::shared_ptr<markov::PersistentChainStats>&
  persistent_store() const noexcept {
    return persist_;
  }

  /// Total cached scenario entries across all threads (observability for
  /// memory monitoring and the clear_caches tests). Same concurrency
  /// contract as clear_caches(): MUST NOT run while run / run_trial /
  /// scenario_for / estimator_for are in flight — worker threads mutate
  /// their caches without the directory mutex this reads sizes under.
  [[nodiscard]] std::size_t cached_entries();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Point-in-time scrape of the process-wide obs registry (obs::configure
  /// gates whether anything was counted). Session-level so benches and
  /// drivers read engine/session/chain-store series without touching the
  /// registry directly; the serve daemon's `metrics` verb is the same
  /// snapshot over the wire. Safe from any thread at any time.
  [[nodiscard]] static obs::Snapshot scrape() {
    return obs::Registry::instance().snapshot();
  }

 private:
  /// A scenario instantiated together with its estimator (the estimator
  /// holds references into the scenario, so they live and die together).
  /// Holds the platform family it was built by: the cache key uses the
  /// family's object identity, so the entry must keep that object alive
  /// (otherwise a later family could be allocated at the same address and
  /// alias the key).
  struct ScenarioEntry {
    /// `store`: the session's shared chain-statistics store, or nullptr for
    /// a private per-estimator store (shared_chain_stats ablated).
    ScenarioEntry(std::shared_ptr<const scen::PlatformFamily> family,
                  const platform::ScenarioParams& params, double eps,
                  std::shared_ptr<markov::ChainStatsStore> store);
    std::shared_ptr<const scen::PlatformFamily> family;
    platform::Scenario scenario;
    sched::Estimator estimator;
  };
  /// Scenario-identity key: the platform family INSTANCE plus every
  /// ScenarioParams field that affects its make(). Object identity, not the
  /// registry name: re-registering a name replaces the family, and a cached
  /// scenario from the old binding must not be served for the new one. (The
  /// availability family never affects the scenario, only the per-trial
  /// stream, so it is not part of the key.)
  using Key =
      std::tuple<const scen::PlatformFamily*, std::uint64_t, int, int, long, int, int>;
  using ThreadCache = std::map<Key, std::unique_ptr<ScenarioEntry>>;

  [[nodiscard]] ScenarioEntry& entry_for(const scen::ScenarioSpace& space,
                                         const platform::ScenarioParams& params);
  /// Overload with the platform family pre-resolved (sweep workers stay off
  /// the registry mutex).
  [[nodiscard]] ScenarioEntry& entry_for(
      std::shared_ptr<const scen::PlatformFamily> family,
      const platform::ScenarioParams& params);
  [[nodiscard]] ThreadCache& this_thread_cache();

  /// The availability family arrives pre-resolved: Session::run resolves it
  /// once per sweep (workers stay off the registry mutex), run_trial once
  /// per call (so name re-binding is honored between calls).
  [[nodiscard]] static sim::SimulationResult run_one(
      const Options& options, const scen::AvailabilityFamily& availability,
      const platform::Scenario& scenario, const sched::Estimator& estimator,
      std::string_view heuristic, int trial, sim::ActivityTrace* trace);

  /// One heuristic run replayed against a shared materialized realization
  /// (identical scheduler seeding to run_one; the availability stream comes
  /// from the realization instead of a fresh source). Can throw
  /// platform::RealizationBudgetExceeded while lazily extending the
  /// realization — the caller falls back to run_one.
  [[nodiscard]] static sim::SimulationResult run_replayed(
      const Options& options, platform::Realization& realization,
      const platform::Scenario& scenario, const sched::Estimator& estimator,
      std::string_view heuristic, int trial);

  /// The lockstep sweep executor behind run() when options.trial_batch > 1
  /// (see run()'s §13 note for semantics; spec is already validated).
  RunStats run_batched(const ExperimentSpec& spec,
                       const std::vector<ResultSink*>& sinks,
                       const Progress& progress, const std::atomic<bool>* stop);

  Options options_;

  /// The disk-backed cache behind chain_store_ (options_.store_dir; nullptr
  /// when unset). Created once, never reassigned: clear_caches() swaps the
  /// in-memory store but keeps the persistent layer — that asymmetry is the
  /// point (eviction drops heap bytes, disk generations keep the warmth).
  std::shared_ptr<markov::PersistentChainStats> persist_;

  /// One store per session (created when options_.shared_chain_stats),
  /// handed to every estimator the session builds and shared by all pool
  /// workers of run(). Replaced wholesale by clear_caches() — estimators
  /// keep their store alive via shared_ptr, so a reset cannot strand one.
  std::shared_ptr<markov::ChainStatsStore> chain_store_;

  std::mutex cache_mutex_;  ///< guards the per-thread cache directory only
  std::map<std::thread::id, ThreadCache> caches_;
};

}  // namespace tcgrid::api
