// Session: the single entry point for running experiments.
//
// A Session owns the execution machinery the old drivers wired by hand —
// scenario instantiation, estimator construction and reuse, scheduler
// creation, engine setup, worker threads — behind three calls:
//
//   * run(spec, sinks)    — a full factorial sweep, streamed to ResultSinks;
//   * run_trial(...)      — one (scenario, heuristic, trial) paired run;
//   * run_custom(...)     — one run with a caller-supplied availability
//                           source and/or scheduler (scripted traces,
//                           clairvoyant references, ablation schedulers).
//
// Thread-safety contract (the rule formerly only stated as a comment in
// expt/runner.hpp, now enforced structurally):
//
//   * sched::Estimator is NOT thread-safe, and estimator cache warmth is the
//     dominant cost of a sweep. The session keeps one estimator cache PER
//     WORKER THREAD, keyed by scenario identity, so an estimator is only
//     ever touched by the thread that built it.
//   * ResultSink::consume and the progress callback may be invoked from
//     worker threads but are serialized under an internal mutex: no two
//     calls ever run concurrently, so unsynchronized sink/callback state is
//     safe. (Legacy expt::run_sweep inherits this guarantee.)
//   * run_trial / run_custom / scenario_for may be called from any ONE
//     thread at a time; concurrent calls into the same Session from
//     different user threads are serialized by the same per-thread caching
//     (each caller thread gets its own cache).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "api/options.hpp"
#include "api/sink.hpp"
#include "api/spec.hpp"
#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "scen/space.hpp"
#include "sched/estimator.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace tcgrid::api {

class Session {
 public:
  /// Options for single-run calls (run_trial / run_custom) and the defaults
  /// a sweep falls back to. ExperimentSpec::options wins inside run().
  explicit Session(Options options = {});

  /// Progress callback: (scenarios completed, scenarios total). Serialized
  /// with sink consumption (see the thread-safety contract above).
  using Progress = std::function<void(std::size_t, std::size_t)>;

  struct RunStats {
    std::size_t scenarios = 0;  ///< scenarios simulated
    std::size_t rows = 0;       ///< trial outcomes streamed to sinks
  };

  /// Run the spec, streaming every completed (heuristic, scenario, trial)
  /// outcome to each sink. Validates the spec up front (throws
  /// std::invalid_argument before any simulation starts). Scenarios are
  /// distributed over spec.options.threads workers; simulation RESULTS are
  /// deterministic and independent of the thread count, but the ORDER in
  /// which rows reach sinks is completion order (see sink.hpp).
  RunStats run(const ExperimentSpec& spec, const std::vector<ResultSink*>& sinks,
               const Progress& progress = nullptr);

  /// One paired trial: the availability realization is a pure function of
  /// (scenario space, scenario seed, trial), so every heuristic run with the
  /// same arguments faces the identical availability (the paper's paired
  /// comparison). The scenario and its estimator are cached per calling
  /// thread. If `trace` is non-null the engine records the activity trace
  /// into it.
  [[nodiscard]] sim::SimulationResult run_trial(const platform::ScenarioParams& params,
                                                std::string_view heuristic, int trial,
                                                sim::ActivityTrace* trace = nullptr);

  /// run_trial in an explicit scenario space: the platform comes from the
  /// space's platform family, the availability stream from its availability
  /// family (both resolved through the scen registry), while scheduler
  /// seeding and pairing are unchanged. The default space reproduces the
  /// two-argument overload bit for bit.
  [[nodiscard]] sim::SimulationResult run_trial(const scen::ScenarioSpace& space,
                                                const platform::ScenarioParams& params,
                                                std::string_view heuristic, int trial,
                                                sim::ActivityTrace* trace = nullptr);

  /// One run with a caller-supplied availability source and scheduler,
  /// using the session options for the engine knobs. The engine consumes
  /// the source in avail_block prefetch batches, so after the run the
  /// source's position is up to avail_block - 1 slots past the last
  /// simulated slot — construct a fresh source rather than reusing one to
  /// continue its stream.
  [[nodiscard]] sim::SimulationResult run_custom(const platform::Platform& platform,
                                                 const model::Application& app,
                                                 platform::AvailabilitySource& availability,
                                                 sim::Scheduler& scheduler,
                                                 sim::ActivityTrace* trace = nullptr) const;

  /// run_custom with per-call option overrides (e.g. the ablation bench
  /// sweeping CommOrder without rebuilding a session).
  [[nodiscard]] static sim::SimulationResult run_custom(
      const Options& options, const platform::Platform& platform,
      const model::Application& app, platform::AvailabilitySource& availability,
      sim::Scheduler& scheduler, sim::ActivityTrace* trace = nullptr);

  /// The cached instantiation of a scenario (platform + application) for the
  /// calling thread. Valid until the session is destroyed.
  [[nodiscard]] const platform::Scenario& scenario_for(const platform::ScenarioParams& params);

  /// The calling thread's cached estimator for a scenario (built on first
  /// use with options().eps). Valid until the session is destroyed; never
  /// share it with another thread.
  [[nodiscard]] const sched::Estimator& estimator_for(const platform::ScenarioParams& params);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  /// A scenario instantiated together with its estimator (the estimator
  /// holds references into the scenario, so they live and die together).
  /// Holds the platform family it was built by: the cache key uses the
  /// family's object identity, so the entry must keep that object alive
  /// (otherwise a later family could be allocated at the same address and
  /// alias the key).
  struct ScenarioEntry {
    ScenarioEntry(std::shared_ptr<const scen::PlatformFamily> family,
                  const platform::ScenarioParams& params, double eps);
    std::shared_ptr<const scen::PlatformFamily> family;
    platform::Scenario scenario;
    sched::Estimator estimator;
  };
  /// Scenario-identity key: the platform family INSTANCE plus every
  /// ScenarioParams field that affects its make(). Object identity, not the
  /// registry name: re-registering a name replaces the family, and a cached
  /// scenario from the old binding must not be served for the new one. (The
  /// availability family never affects the scenario, only the per-trial
  /// stream, so it is not part of the key.)
  using Key =
      std::tuple<const scen::PlatformFamily*, std::uint64_t, int, int, long, int, int>;
  using ThreadCache = std::map<Key, std::unique_ptr<ScenarioEntry>>;

  [[nodiscard]] ScenarioEntry& entry_for(const scen::ScenarioSpace& space,
                                         const platform::ScenarioParams& params);
  [[nodiscard]] ThreadCache& this_thread_cache();

  /// The availability family arrives pre-resolved: Session::run resolves it
  /// once per sweep (workers stay off the registry mutex), run_trial once
  /// per call (so name re-binding is honored between calls).
  [[nodiscard]] static sim::SimulationResult run_one(
      const Options& options, const scen::AvailabilityFamily& availability,
      const platform::Scenario& scenario, const sched::Estimator& estimator,
      std::string_view heuristic, int trial, sim::ActivityTrace* trace);

  Options options_;

  std::mutex cache_mutex_;  ///< guards the per-thread cache directory only
  std::map<std::thread::id, ThreadCache> caches_;
};

}  // namespace tcgrid::api
