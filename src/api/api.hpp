// Umbrella header for the tcgrid experiment facade.
//
//   #include "api/api.hpp"
//
//   tcgrid::api::ExperimentSpec spec = tcgrid::api::ExperimentSpec::reduced(5, 200'000);
//   tcgrid::api::Session session;
//   tcgrid::api::AggregateSink agg;
//   tcgrid::api::CsvSink csv("outcomes.csv");
//   session.run(spec, {&agg, &csv});
//
// See README.md for the full quickstart and DESIGN.md §6 for the layer's
// rationale.
#pragma once

#include "api/options.hpp"   // IWYU pragma: export
#include "api/session.hpp"   // IWYU pragma: export
#include "api/sink.hpp"      // IWYU pragma: export
#include "api/spec.hpp"      // IWYU pragma: export
