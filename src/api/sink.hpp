// Streaming result sinks: where completed trial outcomes go.
//
// A Session streams each finished (heuristic, scenario, trial) outcome to its
// sinks as soon as it completes instead of materializing the full
// outcomes[h][scenario][trial] tensor. Sinks compose: run one sweep, feed an
// in-memory aggregate AND a CSV file AND a JSONL log in one pass.
//
// Thread-safety contract (see also Session): `begin` and `finish` are called
// exactly once, from the thread invoking Session::run. `consume` may be
// invoked from worker threads, but calls are SERIALIZED by the session under
// an internal mutex — a sink never sees two concurrent consume() calls, so
// plain (unsynchronized) sink state is safe.
//
// consume() MUST NOT throw: it runs inside thread-pool tasks, which
// terminate the process on escaping exceptions (see util/thread_pool.hpp).
// Record the failure in the sink and report it from finish(), which runs on
// the Session::run caller's thread and may throw (the file sinks do this for
// stream write failures).
//
// Row ORDER across scenarios is completion order and therefore depends on
// thread scheduling; the (heuristic, scenario, trial) COORDINATES and result
// values are deterministic. Index-addressed sinks (AggregateSink) are fully
// thread-count independent; streamed files (CSV/JSONL) carry the coordinates
// in every row, so sort before diffing runs.
#pragma once

#include <iosfwd>
#include <fstream>
#include <string>
#include <vector>

#include "expt/sweep.hpp"
#include "platform/scenario.hpp"
#include "sim/stats.hpp"

namespace tcgrid::api {

struct ExperimentSpec;

/// Open `path` for writing, throwing std::runtime_error on failure (so file
/// sinks fail at construction, not silently after an hours-long sweep).
[[nodiscard]] std::ofstream open_or_throw(const std::string& path);

/// One completed simulation, streamed to sinks as soon as it finishes.
struct ResultRow {
  std::size_t heuristic = 0;  ///< index into the spec's resolved heuristics
  std::size_t scenario = 0;   ///< index into the spec's scenario population
  int trial = 0;
  const std::string* name = nullptr;              ///< heuristic name
  const std::string* family = nullptr;            ///< availability-family name
  const platform::ScenarioParams* params = nullptr;  ///< scenario identity
  const sim::SimulationResult* result = nullptr;  ///< full simulation outcome
};

/// Consumer of streamed trial outcomes.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once, before any result, with the resolved experiment shape.
  virtual void begin(const ExperimentSpec& spec,
                     const std::vector<platform::ScenarioParams>& scenarios,
                     const std::vector<std::string>& heuristics) {
    (void)spec, (void)scenarios, (void)heuristics;
  }

  /// Called once per completed trial; serialized, possibly on worker threads.
  virtual void consume(const ResultRow& row) = 0;

  /// Called once after the last result.
  virtual void finish() {}
};

/// In-memory aggregation into the legacy expt::SweepResults tensor, for the
/// paper-style reports (summarize_all, figure2_series) and the run_sweep
/// compatibility adapter.
class AggregateSink final : public ResultSink {
 public:
  void begin(const ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>& scenarios,
             const std::vector<std::string>& heuristics) override;
  void consume(const ResultRow& row) override;

  [[nodiscard]] const expt::SweepResults& results() const noexcept { return results_; }
  /// Move the aggregate out (the sink is empty afterwards).
  [[nodiscard]] expt::SweepResults take() && { return std::move(results_); }

 private:
  expt::SweepResults results_;
};

/// Streams one CSV row per trial (schema of expt::outcomes_csv plus the
/// per-run restart/reconfiguration/idle counters).
class CsvSink final : public ResultSink {
 public:
  /// Write to an external stream (kept open; caller owns lifetime).
  explicit CsvSink(std::ostream& out) : out_(&out) {}
  /// Write to a file, truncating it. Throws std::runtime_error if the file
  /// cannot be opened (a sweep must not run for hours into a missing sink).
  explicit CsvSink(const std::string& path) : file_(open_or_throw(path)), out_(&file_) {}

  void begin(const ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>& scenarios,
             const std::vector<std::string>& heuristics) override;
  void consume(const ResultRow& row) override;
  void finish() override;

  /// Column names, in order.
  [[nodiscard]] static const std::vector<std::string>& header();

 private:
  std::ofstream file_;
  std::ostream* out_;
  bool header_written_ = false;  ///< one header even across several runs
};

/// Streams one JSON object per line per trial — the shape sharding and
/// checkpointing consumers want (append-only, order-independent, mergeable).
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  /// Throws std::runtime_error if the file cannot be opened.
  explicit JsonlSink(const std::string& path) : file_(open_or_throw(path)), out_(&file_) {}

  void consume(const ResultRow& row) override;
  void finish() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
};

}  // namespace tcgrid::api
