#include "api/session.hpp"

#include <atomic>
#include <cassert>
#include <optional>

#include "expt/runner.hpp"
#include "obs/obs.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/trial_batch.hpp"
#include "util/thread_pool.hpp"

namespace tcgrid::api {

namespace {

/// Registered-once handles for the session/engine instrument sites (the
/// registration takes the registry mutex; the handles never do).
struct SessionMetrics {
  obs::Histogram unit_us;        ///< whole (scenario, trial) unit
  obs::Histogram claim_us;       ///< entry_for: cache hit or estimator build
  obs::Histogram run_replay_us;  ///< one engine run, replayed realization
  obs::Histogram run_live_us;    ///< one engine run, live generation
  obs::Histogram emit_us;        ///< sink-emit section (incl. mutex wait)
  obs::Counter budget_fallbacks; ///< units dropped to live by budget overflow
};

SessionMetrics& session_metrics() {
  static SessionMetrics m = [] {
    obs::Registry& reg = obs::Registry::instance();
    return SessionMetrics{
        reg.histogram("tcgrid_session_unit_us"),
        reg.histogram("tcgrid_session_claim_us"),
        reg.histogram("tcgrid_session_run_us", {{"mode", "replay"}}),
        reg.histogram("tcgrid_session_run_us", {{"mode", "live"}}),
        reg.histogram("tcgrid_session_emit_us"),
        reg.counter("tcgrid_session_budget_fallbacks_total"),
    };
  }();
  return m;
}

struct EngineMetrics {
  obs::Counter consults;
  obs::Counter per_slot_steps;
  obs::Counter runs_comm, runs_configured, runs_idle;
  obs::Counter slots_comm, slots_configured, slots_idle;
  obs::Counter replay_jumps;
  obs::Histogram bulk_advance_slots;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m = [] {
    obs::Registry& reg = obs::Registry::instance();
    return EngineMetrics{
        reg.counter("tcgrid_engine_consults_total"),
        reg.counter("tcgrid_engine_per_slot_steps_total"),
        reg.counter("tcgrid_engine_bulk_runs_total", {{"kind", "comm"}}),
        reg.counter("tcgrid_engine_bulk_runs_total", {{"kind", "configured"}}),
        reg.counter("tcgrid_engine_bulk_runs_total", {{"kind", "idle"}}),
        reg.counter("tcgrid_engine_bulk_slots_total", {{"kind", "comm"}}),
        reg.counter("tcgrid_engine_bulk_slots_total", {{"kind", "configured"}}),
        reg.counter("tcgrid_engine_bulk_slots_total", {{"kind", "idle"}}),
        reg.counter("tcgrid_engine_replay_jumps_total"),
        reg.histogram("tcgrid_engine_bulk_advance_slots"),
    };
  }();
  return m;
}

/// Fold one finished run's RunTelemetry into the registry. Covers every
/// engine the session constructs (run_one and run_replayed are the two
/// construction sites shared by run(), run_trial() and the serve workers).
void flush_engine_telemetry(const sim::Engine& engine) {
  if (!obs::enabled()) return;
  const sim::RunTelemetry& t = engine.telemetry();
  EngineMetrics& m = engine_metrics();
  m.consults.inc(static_cast<std::uint64_t>(engine.consults()));
  m.per_slot_steps.inc(static_cast<std::uint64_t>(t.per_slot_steps));
  m.runs_comm.inc(static_cast<std::uint64_t>(t.bulk_runs_comm));
  m.runs_configured.inc(static_cast<std::uint64_t>(t.bulk_runs_configured));
  m.runs_idle.inc(static_cast<std::uint64_t>(t.bulk_runs_idle));
  m.slots_comm.inc(static_cast<std::uint64_t>(t.bulk_slots_comm));
  m.slots_configured.inc(static_cast<std::uint64_t>(t.bulk_slots_configured));
  m.slots_idle.inc(static_cast<std::uint64_t>(t.bulk_slots_idle));
  m.replay_jumps.inc(static_cast<std::uint64_t>(t.replay_jumps));
  m.bulk_advance_slots.merge(t.bulk_advance_slots);
}

/// Lockstep-batch instrument sites (DESIGN.md §13): rounds driven, lanes
/// peeled to the scalar tail, and the active-width distribution. Scraped
/// through the same registry snapshot as every other series (the serve
/// daemon's `metrics` verb included).
struct BatchMetrics {
  obs::Counter rounds;
  obs::Counter peels;
  obs::Histogram width;
};

BatchMetrics& batch_metrics() {
  static BatchMetrics m = [] {
    obs::Registry& reg = obs::Registry::instance();
    return BatchMetrics{
        reg.counter("tcgrid_batch_rounds_total"),
        reg.counter("tcgrid_batch_peels_total"),
        reg.histogram("tcgrid_batch_width"),
    };
  }();
  return m;
}

/// Fold one TrialBatch run's batch-level telemetry into the registry.
void flush_batch_telemetry(const sim::RunTelemetry& t) {
  if (!obs::enabled()) return;
  BatchMetrics& m = batch_metrics();
  m.rounds.inc(static_cast<std::uint64_t>(t.batch_rounds));
  m.peels.inc(static_cast<std::uint64_t>(t.batch_peels));
  m.width.merge(t.batch_width);
}

}  // namespace

Session::Session(Options options) : options_(std::move(options)) {
  if (!options_.store_dir.empty() && !options_.shared_chain_stats) {
    throw std::invalid_argument(
        "Session: store_dir requires shared_chain_stats (a persistent cache "
        "backs the session store; private per-estimator stores have none)");
  }
  if (!options_.store_dir.empty()) {
    persist_ = std::make_shared<markov::PersistentChainStats>(options_.store_dir,
                                                              options_.eps);
  }
  if (options_.shared_chain_stats) {
    chain_store_ = std::make_shared<markov::ChainStatsStore>(options_.eps, persist_);
  }
}

Session::~Session() {
  // Quiesce-point flush, best effort: a session dying with a full store
  // should leave its warmth on disk, but a destructor must not throw — an
  // unwritable store directory at shutdown loses the increment, nothing
  // else.
  try {
    flush_store();
  } catch (...) {
  }
}

std::size_t Session::flush_store() {
  // Copy both pointers under the cache mutex (clear_caches() swaps the
  // in-memory store under the same lock); the flush itself runs unlocked —
  // it serializes internally and snapshots concurrently mutated entries.
  std::shared_ptr<markov::ChainStatsStore> store;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    store = chain_store_;
  }
  if (persist_ == nullptr || store == nullptr) return 0;
  return persist_->flush_from(*store);
}

markov::PersistentChainStats::Counters Session::persistent_store_counters() {
  if (persist_ == nullptr) return {};
  return persist_->counters();
}

Session::ScenarioEntry::ScenarioEntry(std::shared_ptr<const scen::PlatformFamily> fam,
                                      const platform::ScenarioParams& params, double eps,
                                      std::shared_ptr<markov::ChainStatsStore> store)
    : family(std::move(fam)),
      scenario(family->make(params)),
      estimator(scenario.platform, scenario.app, eps, std::move(store)) {}

Session::ThreadCache& Session::this_thread_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // std::map nodes are stable: the returned reference survives other
  // threads inserting their own caches.
  return caches_[std::this_thread::get_id()];
}

Session::ScenarioEntry& Session::entry_for(const scen::ScenarioSpace& space,
                                           const platform::ScenarioParams& params) {
  return entry_for(scen::platform_family(space.platform), params);
}

Session::ScenarioEntry& Session::entry_for(
    std::shared_ptr<const scen::PlatformFamily> family,
    const platform::ScenarioParams& params) {
  ThreadCache& cache = this_thread_cache();
  const Key key{family.get(),  params.seed, params.m, params.ncom,
                params.wmin,   params.p,    params.iterations};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<ScenarioEntry>(std::move(family), params,
                                                            options_.eps, chain_store_))
             .first;
  }
  return *it->second;
}

void Session::clear_caches() {
  // Flush BEFORE the swap: with a store_dir configured, eviction trades
  // memory for disk — the dropped store's computed entries are already in a
  // generation, so the replacement store reconstructs them from the mapping
  // instead of recomputing (the serve daemon's DRAINING path rests on this).
  flush_store();
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  caches_.clear();
  if (chain_store_ != nullptr) {
    // The estimators holding the old store are gone with the caches; a
    // fresh store releases its survival tables and set entries (the bulk of
    // a hot sweep's estimator memory). The persistent layer survives the
    // swap — mapped generations (and pointers the old store served from
    // them) stay alive for the session's lifetime.
    chain_store_ = std::make_shared<markov::ChainStatsStore>(options_.eps, persist_);
  }
}

void Session::drop_estimator_caches() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // Estimators go, the store stays: reconstruction re-interns every chain
  // against the retained entries instead of recomputing them.
  caches_.clear();
}

markov::ChainStatsStore::Counters Session::chain_store_counters() {
  // Copy the pointer under the cache mutex: clear_caches() reassigns
  // chain_store_ under the same lock, so a monitoring thread polling
  // counters mid-sweep cannot race the swap (the store itself is
  // thread-safe; only the member read needs the lock).
  std::shared_ptr<markov::ChainStatsStore> store;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    store = chain_store_;
  }
  if (store == nullptr) return {};
  return store->counters();
}

std::size_t Session::cached_entries() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  std::size_t n = 0;
  for (const auto& [tid, cache] : caches_) n += cache.size();
  return n;
}

const platform::Scenario& Session::scenario_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).scenario;
}

const sched::Estimator& Session::estimator_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).estimator;
}

sim::SimulationResult Session::run_one(const Options& options,
                                       const scen::AvailabilityFamily& family,
                                       const platform::Scenario& scenario,
                                       const sched::Estimator& estimator,
                                       std::string_view heuristic, int trial,
                                       sim::ActivityTrace* trace) {
  // Availability and RANDOM-scheduler streams use the exact derivations of
  // expt::run_trial, so facade runs in the default space are byte-identical
  // to legacy runs; other spaces swap only the availability law.
  const auto availability = family.make_source(
      scenario.platform, expt::trial_seed(scenario, trial), options.init);
  auto scheduler = sched::make_scheduler(
      heuristic, estimator,
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial)));
  sim::Engine engine(scenario.platform, scenario.app, *availability, *scheduler,
                     options.engine(trace != nullptr));
  sim::SimulationResult result;
  {
    const obs::ScopedTimer timer(session_metrics().run_live_us);
    result = engine.run();
  }
  flush_engine_telemetry(engine);
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

sim::SimulationResult Session::run_replayed(const Options& options,
                                            platform::Realization& realization,
                                            const platform::Scenario& scenario,
                                            const sched::Estimator& estimator,
                                            std::string_view heuristic, int trial) {
  // Scheduler seeding is identical to run_one: only where availability rows
  // come from differs, so replayed runs are bit-identical to live ones.
  auto scheduler = sched::make_scheduler(
      heuristic, estimator,
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial)));
  sim::Engine engine(scenario.platform, scenario.app, realization, *scheduler,
                     options.engine(false));
  // Timed manually rather than via ScopedTimer: engine.run() can throw
  // RealizationBudgetExceeded, and an aborted run's partial duration would
  // pollute the replay latency series (the caller re-runs it live).
  const bool metered = obs::enabled();
  const std::uint64_t t0 = metered ? obs::steady_now_us() : 0;
  sim::SimulationResult result = engine.run();
  if (metered) {
    session_metrics().run_replay_us.observe(obs::steady_now_us() - t0);
  }
  flush_engine_telemetry(engine);
  return result;
}

sim::SimulationResult Session::run_trial(const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  return run_trial(scen::ScenarioSpace{}, params, heuristic, trial, trace);
}

sim::SimulationResult Session::run_trial(const scen::ScenarioSpace& space,
                                         const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  if (!sched::is_heuristic_name(heuristic)) {
    throw std::invalid_argument("Session::run_trial: unknown heuristic '" +
                                std::string(heuristic) + "'");
  }
  const auto availability = scen::availability_family(space.availability);
  const ScenarioEntry& entry = entry_for(space, params);
  return run_one(options_, *availability, entry.scenario, entry.estimator, heuristic,
                 trial, trace);
}

sim::SimulationResult Session::run_custom(const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) const {
  return run_custom(options_, platform, app, availability, scheduler, trace);
}

sim::SimulationResult Session::run_custom(const Options& options,
                                          const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) {
  sim::Engine engine(platform, app, availability, scheduler,
                     options.engine(trace != nullptr));
#ifndef NDEBUG
  const long start_pos = availability.position();
#endif
  sim::SimulationResult result = engine.run();
#ifndef NDEBUG
  // The documented post-run contract: the engine consumed whole avail_block
  // prefetch batches, so the source sits past the last simulated slot by
  // less than one block (result.makespan is slot_cap for failed runs, i.e.
  // always the number of simulated slots).
  const long consumed = availability.position() - start_pos;
  const long block = std::min(options.avail_block, options.slot_cap);
  assert(consumed >= result.makespan && consumed < result.makespan + block &&
         "run_custom: source position outside the documented prefetch window");
#endif
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

std::vector<sim::SimulationResult> Session::run_unit(
    const Options& options, const scen::AvailabilityFamily& availability,
    const std::shared_ptr<const scen::PlatformFamily>& platform_family,
    const platform::ScenarioParams& params,
    const std::vector<std::string>& heuristics, int trial) {
  // Unit span + latency breakdown: claim (estimator cache hit or build) →
  // realize/replay per heuristic → the whole unit. Tracer fields identify
  // the unit; the histograms aggregate across all units.
  obs::Span span("unit");
  span.field("seed", params.seed);
  span.field("m", params.m);
  span.field("ncom", params.ncom);
  span.field("wmin", params.wmin);
  span.field("trial", trial);
  const bool metered = obs::enabled();
  const std::uint64_t t_start = metered ? obs::steady_now_us() : 0;

  // The scenario and estimator come from the calling thread's private
  // cache: every heuristic of the unit (and any further unit of the same
  // scenario this thread picks up) reuses one warm, non-thread-safe
  // estimator without locking. clear_caches() releases the entries.
  ScenarioEntry& entry = entry_for(platform_family, params);
  if (metered) {
    const std::uint64_t claim_us = obs::steady_now_us() - t_start;
    session_metrics().claim_us.observe(claim_us);
    span.field("claim_us", claim_us);
  }

  std::optional<platform::Realization> realization;
  if (options.realization_budget > 0) {
    realization.emplace(
        availability.make_source(entry.scenario.platform,
                                 expt::trial_seed(entry.scenario, trial),
                                 options.init),
        options.realization_budget);
  }
  std::vector<sim::SimulationResult> results(heuristics.size());
  std::size_t replayed = 0;
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    if (realization.has_value()) {
      // Last consumer: whatever this run needs beyond the already
      // materialized prefix will never be replayed, so stop recording —
      // the engine continues live on the realization's own source past the
      // frontier (bit-identical stream continuation). With a single
      // heuristic this degrades sharing to plain live generation, which is
      // exactly right.
      if (h + 1 == heuristics.size()) realization->freeze();
      try {
        results[h] = run_replayed(options, *realization, entry.scenario,
                                  entry.estimator, heuristics[h], trial);
        ++replayed;
        continue;
      } catch (const platform::RealizationBudgetExceeded&) {
        // This trial's timeline outgrew the budget: drop the artifact and
        // fall back to live generation for the whole unit (including
        // re-running the interrupted heuristic — results are pure
        // functions of the seeds, so nothing is lost).
        realization.reset();
        session_metrics().budget_fallbacks.inc();
        span.field("budget_fallback", true);
      }
    }
    results[h] = run_one(options, availability, entry.scenario, entry.estimator,
                         heuristics[h], trial, nullptr);
  }
  if (metered) {
    session_metrics().unit_us.observe(obs::steady_now_us() - t_start);
  }
  span.field("replayed", static_cast<std::uint64_t>(replayed));
  span.field("live", static_cast<std::uint64_t>(heuristics.size() - replayed));
  return results;
}

Session::RunStats Session::run(const ExperimentSpec& spec,
                               const std::vector<ResultSink*>& sinks,
                               const Progress& progress,
                               const std::atomic<bool>* stop) {
  spec.validate();
  if (spec.options.trial_batch > 1 && spec.trials > 1) {
    // Lockstep executor (DESIGN.md §13) — bit-identical rows, different
    // interleaving. trials == 1 clamps the batch width to 1, for which the
    // sequential path below IS the degenerate lockstep run.
    return run_batched(spec, sinks, progress, stop);
  }

  const std::vector<platform::ScenarioParams> scenarios = spec.scenarios();
  const std::vector<std::string>& heuristics = spec.resolved_heuristics();
  const Options& options = spec.options;
  // Resolve the space once for the whole sweep: workers never touch the
  // registry mutex, and a mid-sweep re-registration cannot split the sweep
  // across two worlds.
  const auto avail_family = scen::availability_family(spec.scenario_space.availability);
  const auto plat_family = scen::platform_family(spec.scenario_space.platform);

  for (ResultSink* sink : sinks) sink->begin(spec, scenarios, heuristics);

  // Serializes sink consumption and progress reporting (the documented
  // thread-safety contract); also orders the completion counter.
  std::mutex emit_mutex;
  std::atomic<std::size_t> rows{0};
  std::size_t done = 0;

  // Trial-major execution (DESIGN.md §9): the scheduling unit is one
  // (scenario, trial), enumerated scenario-major so consecutive units share
  // a scenario. Each unit materializes its availability realization once
  // and replays it to every heuristic — the paper's paired comparison made
  // literal: one artifact, 17 consumers — instead of regenerating the
  // stream per heuristic run. Dispatch is chunked by `trials`, so all units
  // of a scenario land on ONE worker: its estimator is built once per
  // scenario (as before this refactor), not once per (scenario, thread).
  const auto trials = static_cast<std::size_t>(spec.trials);
  const std::size_t units = scenarios.size() * trials;

  util::parallel_for(
      units,
      [&](std::size_t u) {
        // Cooperative cancellation at the unit boundary: a raised stop flag
        // skips every not-yet-started unit (in-flight ones finish and still
        // stream — sinks never see a torn unit).
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
        const std::size_t sc = u / trials;
        const int trial = static_cast<int>(u % trials);
        const std::vector<sim::SimulationResult> results =
            run_unit(options, *avail_family, plat_family, scenarios[sc], heuristics,
                     trial);
        {
          // One lock hold per unit: the unit's rows reach sinks
          // contiguously, in heuristic order (the documented row-ordering
          // guarantee), and progress ticks once per unit. The timer covers
          // the mutex wait too — emit contention is what it is for.
          const obs::ScopedTimer timer(session_metrics().emit_us);
          const std::lock_guard<std::mutex> lock(emit_mutex);
          for (std::size_t h = 0; h < heuristics.size(); ++h) {
            ResultRow row;
            row.heuristic = h;
            row.scenario = sc;
            row.trial = trial;
            row.name = &heuristics[h];
            row.family = &spec.scenario_space.availability;
            row.params = &scenarios[sc];
            row.result = &results[h];
            for (ResultSink* sink : sinks) sink->consume(row);
          }
          ++done;
          if (progress) progress(done, units);
        }
        rows.fetch_add(heuristics.size(), std::memory_order_relaxed);
      },
      options.threads, trials);

  for (ResultSink* sink : sinks) sink->finish();

  // Quiesce point: every unit is done (or skipped), so persist the sweep's
  // newly computed chain statistics as one generation.
  if (persist_ != nullptr) flush_store();

  RunStats stats;
  stats.scenarios = scenarios.size();
  stats.rows = rows.load();
  stats.units_total = units;
  stats.units_done = done;
  stats.cancelled = done < units;
  return stats;
}

Session::RunStats Session::run_batched(const ExperimentSpec& spec,
                                       const std::vector<ResultSink*>& sinks,
                                       const Progress& progress,
                                       const std::atomic<bool>* stop) {
  const std::vector<platform::ScenarioParams> scenarios = spec.scenarios();
  const std::vector<std::string>& heuristics = spec.resolved_heuristics();
  const Options& options = spec.options;
  const auto avail_family = scen::availability_family(spec.scenario_space.availability);
  const auto plat_family = scen::platform_family(spec.scenario_space.platform);

  for (ResultSink* sink : sinks) sink->begin(spec, scenarios, heuristics);

  std::mutex emit_mutex;
  std::atomic<std::size_t> rows{0};
  std::size_t done = 0;  // in (scenario, trial) sequential-unit equivalents

  // Work item = one (scenario, trial-range) of up to B consecutive trials;
  // the full heuristic list runs inside the item so the range's B
  // realizations are shared by every heuristic, exactly as run_unit shares
  // one realization. Chunking by `ranges` keeps a whole scenario on one
  // worker (one estimator build per scenario, as in the sequential path).
  // Progress and RunStats stay in (scenario, trial) units — the executors
  // are interchangeable to every observer.
  const auto trials = static_cast<std::size_t>(spec.trials);
  const std::size_t width =
      std::min(static_cast<std::size_t>(options.trial_batch), trials);
  const std::size_t ranges = (trials + width - 1) / width;
  const std::size_t items = scenarios.size() * ranges;
  const std::size_t seq_units = scenarios.size() * trials;

  util::parallel_for(
      items,
      [&](std::size_t u) {
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
        const std::size_t sc = u / ranges;
        const std::size_t range = u % ranges;
        const int trial0 = static_cast<int>(range * width);
        const int b = static_cast<int>(
            std::min(width, trials - range * width));  // ragged last range

        ScenarioEntry& entry = entry_for(plat_family, scenarios[sc]);
        const platform::Scenario& scenario = entry.scenario;

        // Per-lane realizations, shared across the heuristic loop. A lane
        // whose timeline outgrows the budget drops to live generation for
        // the interrupted heuristic onward — the same per-trial fallback
        // run_unit applies, minus the other lanes (their artifacts are
        // unaffected). budget == 0 disables sharing: every lane live.
        std::vector<std::unique_ptr<platform::Realization>> real(
            static_cast<std::size_t>(b));
        if (options.realization_budget > 0) {
          for (int i = 0; i < b; ++i) {
            real[static_cast<std::size_t>(i)] =
                std::make_unique<platform::Realization>(
                    avail_family->make_source(
                        scenario.platform,
                        expt::trial_seed(scenario, trial0 + i), options.init),
                    options.realization_budget);
          }
        }

        // results[lane][heuristic], buffered so rows can be emitted in
        // trial-then-heuristic order — B back-to-back sequential units.
        std::vector<std::vector<sim::SimulationResult>> results(
            static_cast<std::size_t>(b),
            std::vector<sim::SimulationResult>(heuristics.size()));

        bool abandoned = false;
        for (std::size_t h = 0; h < heuristics.size() && !abandoned; ++h) {
          // Replay lanes run in lockstep; scheduler seeding is identical to
          // run_one, so every lane is bit-for-bit the sequential run.
          std::vector<std::unique_ptr<sim::Scheduler>> schedulers;
          std::vector<sim::TrialBatch::Lane> lanes;
          std::vector<int> lane_of;  // lane index -> range-local trial
          for (int i = 0; i < b; ++i) {
            platform::Realization* r = real[static_cast<std::size_t>(i)].get();
            if (r == nullptr) continue;
            // Last consumer: stop recording, continue live past the
            // frontier (run_unit's freeze rule, per lane).
            if (h + 1 == heuristics.size()) r->freeze();
            schedulers.push_back(sched::make_scheduler(
                heuristics[h], entry.estimator,
                util::derive_seed(scenario.params.seed,
                                  2000 + static_cast<std::uint64_t>(trial0 + i))));
            lanes.push_back({r, schedulers.back().get()});
            lane_of.push_back(i);
          }
          if (!lanes.empty()) {
            sim::TrialBatch batch(scenario.platform, scenario.app,
                                  std::move(lanes), options.engine(false));
            const bool metered = obs::enabled();
            const std::uint64_t t0 = metered ? obs::steady_now_us() : 0;
            const sim::TrialBatch::Outcome outcome = batch.run(stop);
            if (metered) {
              session_metrics().run_replay_us.observe(obs::steady_now_us() - t0);
            }
            for (int lane = 0; lane < batch.width(); ++lane) {
              flush_engine_telemetry(batch.engine(lane));
            }
            flush_batch_telemetry(batch.batch_telemetry());
            if (outcome.cancelled) {
              abandoned = true;  // no rows: sinks never see a torn item
              break;
            }
            for (std::size_t lane = 0; lane < lane_of.size(); ++lane) {
              const auto i = static_cast<std::size_t>(lane_of[lane]);
              if (outcome.completed[lane]) {
                results[i][h] = std::move(outcome.results[lane]);
              } else {
                // Budget overflow: drop the artifact, rerun this heuristic
                // (and run the remaining ones) live for this trial only.
                real[i].reset();
                session_metrics().budget_fallbacks.inc();
              }
            }
          }
          for (int i = 0; i < b && !abandoned; ++i) {
            if (real[static_cast<std::size_t>(i)] != nullptr) continue;
            if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
              abandoned = true;
              break;
            }
            results[static_cast<std::size_t>(i)][h] =
                run_one(options, *avail_family, scenario, entry.estimator,
                        heuristics[h], trial0 + i, nullptr);
          }
        }
        if (abandoned) return;

        {
          const obs::ScopedTimer timer(session_metrics().emit_us);
          const std::lock_guard<std::mutex> lock(emit_mutex);
          for (int i = 0; i < b; ++i) {
            for (std::size_t h = 0; h < heuristics.size(); ++h) {
              ResultRow row;
              row.heuristic = h;
              row.scenario = sc;
              row.trial = trial0 + i;
              row.name = &heuristics[h];
              row.family = &spec.scenario_space.availability;
              row.params = &scenarios[sc];
              row.result = &results[static_cast<std::size_t>(i)][h];
              for (ResultSink* sink : sinks) sink->consume(row);
            }
          }
          done += static_cast<std::size_t>(b);
          if (progress) progress(done, seq_units);
        }
        rows.fetch_add(static_cast<std::size_t>(b) * heuristics.size(),
                       std::memory_order_relaxed);
      },
      options.threads, ranges);

  for (ResultSink* sink : sinks) sink->finish();

  if (persist_ != nullptr) flush_store();  // quiesce point, as in run()

  RunStats stats;
  stats.scenarios = scenarios.size();
  stats.rows = rows.load();
  stats.units_total = seq_units;
  stats.units_done = done;
  stats.cancelled = done < seq_units;
  return stats;
}

}  // namespace tcgrid::api
