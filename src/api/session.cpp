#include "api/session.hpp"

#include <atomic>
#include <cassert>
#include <optional>

#include "expt/runner.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace tcgrid::api {

Session::Session(Options options) : options_(options) {
  if (options_.shared_chain_stats) {
    chain_store_ = std::make_shared<markov::ChainStatsStore>(options_.eps);
  }
}

Session::ScenarioEntry::ScenarioEntry(std::shared_ptr<const scen::PlatformFamily> fam,
                                      const platform::ScenarioParams& params, double eps,
                                      std::shared_ptr<markov::ChainStatsStore> store)
    : family(std::move(fam)),
      scenario(family->make(params)),
      estimator(scenario.platform, scenario.app, eps, std::move(store)) {}

Session::ThreadCache& Session::this_thread_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // std::map nodes are stable: the returned reference survives other
  // threads inserting their own caches.
  return caches_[std::this_thread::get_id()];
}

Session::ScenarioEntry& Session::entry_for(const scen::ScenarioSpace& space,
                                           const platform::ScenarioParams& params) {
  return entry_for(scen::platform_family(space.platform), params);
}

Session::ScenarioEntry& Session::entry_for(
    std::shared_ptr<const scen::PlatformFamily> family,
    const platform::ScenarioParams& params) {
  ThreadCache& cache = this_thread_cache();
  const Key key{family.get(),  params.seed, params.m, params.ncom,
                params.wmin,   params.p,    params.iterations};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<ScenarioEntry>(std::move(family), params,
                                                            options_.eps, chain_store_))
             .first;
  }
  return *it->second;
}

void Session::clear_caches() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  caches_.clear();
  if (chain_store_ != nullptr) {
    // The estimators holding the old store are gone with the caches; a
    // fresh store releases its survival tables and set entries (the bulk of
    // a hot sweep's estimator memory).
    chain_store_ = std::make_shared<markov::ChainStatsStore>(options_.eps);
  }
}

markov::ChainStatsStore::Counters Session::chain_store_counters() {
  // Copy the pointer under the cache mutex: clear_caches() reassigns
  // chain_store_ under the same lock, so a monitoring thread polling
  // counters mid-sweep cannot race the swap (the store itself is
  // thread-safe; only the member read needs the lock).
  std::shared_ptr<markov::ChainStatsStore> store;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    store = chain_store_;
  }
  if (store == nullptr) return {};
  return store->counters();
}

std::size_t Session::cached_entries() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  std::size_t n = 0;
  for (const auto& [tid, cache] : caches_) n += cache.size();
  return n;
}

const platform::Scenario& Session::scenario_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).scenario;
}

const sched::Estimator& Session::estimator_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).estimator;
}

sim::SimulationResult Session::run_one(const Options& options,
                                       const scen::AvailabilityFamily& family,
                                       const platform::Scenario& scenario,
                                       const sched::Estimator& estimator,
                                       std::string_view heuristic, int trial,
                                       sim::ActivityTrace* trace) {
  // Availability and RANDOM-scheduler streams use the exact derivations of
  // expt::run_trial, so facade runs in the default space are byte-identical
  // to legacy runs; other spaces swap only the availability law.
  const auto availability = family.make_source(
      scenario.platform, expt::trial_seed(scenario, trial), options.init);
  auto scheduler = sched::make_scheduler(
      heuristic, estimator,
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial)));
  sim::Engine engine(scenario.platform, scenario.app, *availability, *scheduler,
                     options.engine(trace != nullptr));
  sim::SimulationResult result = engine.run();
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

sim::SimulationResult Session::run_replayed(const Options& options,
                                            platform::Realization& realization,
                                            const platform::Scenario& scenario,
                                            const sched::Estimator& estimator,
                                            std::string_view heuristic, int trial) {
  // Scheduler seeding is identical to run_one: only where availability rows
  // come from differs, so replayed runs are bit-identical to live ones.
  auto scheduler = sched::make_scheduler(
      heuristic, estimator,
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial)));
  sim::Engine engine(scenario.platform, scenario.app, realization, *scheduler,
                     options.engine(false));
  return engine.run();
}

sim::SimulationResult Session::run_trial(const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  return run_trial(scen::ScenarioSpace{}, params, heuristic, trial, trace);
}

sim::SimulationResult Session::run_trial(const scen::ScenarioSpace& space,
                                         const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  if (!sched::is_heuristic_name(heuristic)) {
    throw std::invalid_argument("Session::run_trial: unknown heuristic '" +
                                std::string(heuristic) + "'");
  }
  const auto availability = scen::availability_family(space.availability);
  const ScenarioEntry& entry = entry_for(space, params);
  return run_one(options_, *availability, entry.scenario, entry.estimator, heuristic,
                 trial, trace);
}

sim::SimulationResult Session::run_custom(const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) const {
  return run_custom(options_, platform, app, availability, scheduler, trace);
}

sim::SimulationResult Session::run_custom(const Options& options,
                                          const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) {
  sim::Engine engine(platform, app, availability, scheduler,
                     options.engine(trace != nullptr));
#ifndef NDEBUG
  const long start_pos = availability.position();
#endif
  sim::SimulationResult result = engine.run();
#ifndef NDEBUG
  // The documented post-run contract: the engine consumed whole avail_block
  // prefetch batches, so the source sits past the last simulated slot by
  // less than one block (result.makespan is slot_cap for failed runs, i.e.
  // always the number of simulated slots).
  const long consumed = availability.position() - start_pos;
  const long block = std::min(options.avail_block, options.slot_cap);
  assert(consumed >= result.makespan && consumed < result.makespan + block &&
         "run_custom: source position outside the documented prefetch window");
#endif
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

std::vector<sim::SimulationResult> Session::run_unit(
    const Options& options, const scen::AvailabilityFamily& availability,
    const std::shared_ptr<const scen::PlatformFamily>& platform_family,
    const platform::ScenarioParams& params,
    const std::vector<std::string>& heuristics, int trial) {
  // The scenario and estimator come from the calling thread's private
  // cache: every heuristic of the unit (and any further unit of the same
  // scenario this thread picks up) reuses one warm, non-thread-safe
  // estimator without locking. clear_caches() releases the entries.
  ScenarioEntry& entry = entry_for(platform_family, params);

  std::optional<platform::Realization> realization;
  if (options.realization_budget > 0) {
    realization.emplace(
        availability.make_source(entry.scenario.platform,
                                 expt::trial_seed(entry.scenario, trial),
                                 options.init),
        options.realization_budget);
  }
  std::vector<sim::SimulationResult> results(heuristics.size());
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    if (realization.has_value()) {
      // Last consumer: whatever this run needs beyond the already
      // materialized prefix will never be replayed, so stop recording —
      // the engine continues live on the realization's own source past the
      // frontier (bit-identical stream continuation). With a single
      // heuristic this degrades sharing to plain live generation, which is
      // exactly right.
      if (h + 1 == heuristics.size()) realization->freeze();
      try {
        results[h] = run_replayed(options, *realization, entry.scenario,
                                  entry.estimator, heuristics[h], trial);
        continue;
      } catch (const platform::RealizationBudgetExceeded&) {
        // This trial's timeline outgrew the budget: drop the artifact and
        // fall back to live generation for the whole unit (including
        // re-running the interrupted heuristic — results are pure
        // functions of the seeds, so nothing is lost).
        realization.reset();
      }
    }
    results[h] = run_one(options, availability, entry.scenario, entry.estimator,
                         heuristics[h], trial, nullptr);
  }
  return results;
}

Session::RunStats Session::run(const ExperimentSpec& spec,
                               const std::vector<ResultSink*>& sinks,
                               const Progress& progress,
                               const std::atomic<bool>* stop) {
  spec.validate();

  const std::vector<platform::ScenarioParams> scenarios = spec.scenarios();
  const std::vector<std::string>& heuristics = spec.resolved_heuristics();
  const Options& options = spec.options;
  // Resolve the space once for the whole sweep: workers never touch the
  // registry mutex, and a mid-sweep re-registration cannot split the sweep
  // across two worlds.
  const auto avail_family = scen::availability_family(spec.scenario_space.availability);
  const auto plat_family = scen::platform_family(spec.scenario_space.platform);

  for (ResultSink* sink : sinks) sink->begin(spec, scenarios, heuristics);

  // Serializes sink consumption and progress reporting (the documented
  // thread-safety contract); also orders the completion counter.
  std::mutex emit_mutex;
  std::atomic<std::size_t> rows{0};
  std::size_t done = 0;

  // Trial-major execution (DESIGN.md §9): the scheduling unit is one
  // (scenario, trial), enumerated scenario-major so consecutive units share
  // a scenario. Each unit materializes its availability realization once
  // and replays it to every heuristic — the paper's paired comparison made
  // literal: one artifact, 17 consumers — instead of regenerating the
  // stream per heuristic run. Dispatch is chunked by `trials`, so all units
  // of a scenario land on ONE worker: its estimator is built once per
  // scenario (as before this refactor), not once per (scenario, thread).
  const auto trials = static_cast<std::size_t>(spec.trials);
  const std::size_t units = scenarios.size() * trials;

  util::parallel_for(
      units,
      [&](std::size_t u) {
        // Cooperative cancellation at the unit boundary: a raised stop flag
        // skips every not-yet-started unit (in-flight ones finish and still
        // stream — sinks never see a torn unit).
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
        const std::size_t sc = u / trials;
        const int trial = static_cast<int>(u % trials);
        const std::vector<sim::SimulationResult> results =
            run_unit(options, *avail_family, plat_family, scenarios[sc], heuristics,
                     trial);
        {
          // One lock hold per unit: the unit's rows reach sinks
          // contiguously, in heuristic order (the documented row-ordering
          // guarantee), and progress ticks once per unit.
          const std::lock_guard<std::mutex> lock(emit_mutex);
          for (std::size_t h = 0; h < heuristics.size(); ++h) {
            ResultRow row;
            row.heuristic = h;
            row.scenario = sc;
            row.trial = trial;
            row.name = &heuristics[h];
            row.family = &spec.scenario_space.availability;
            row.params = &scenarios[sc];
            row.result = &results[h];
            for (ResultSink* sink : sinks) sink->consume(row);
          }
          ++done;
          if (progress) progress(done, units);
        }
        rows.fetch_add(heuristics.size(), std::memory_order_relaxed);
      },
      options.threads, trials);

  for (ResultSink* sink : sinks) sink->finish();

  RunStats stats;
  stats.scenarios = scenarios.size();
  stats.rows = rows.load();
  stats.units_total = units;
  stats.units_done = done;
  stats.cancelled = done < units;
  return stats;
}

}  // namespace tcgrid::api
