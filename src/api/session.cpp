#include "api/session.hpp"

#include <atomic>

#include "expt/runner.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace tcgrid::api {

Session::Session(Options options) : options_(options) {}

Session::ScenarioEntry::ScenarioEntry(std::shared_ptr<const scen::PlatformFamily> fam,
                                      const platform::ScenarioParams& params, double eps)
    : family(std::move(fam)),
      scenario(family->make(params)),
      estimator(scenario.platform, scenario.app, eps) {}

Session::ThreadCache& Session::this_thread_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // std::map nodes are stable: the returned reference survives other
  // threads inserting their own caches.
  return caches_[std::this_thread::get_id()];
}

Session::ScenarioEntry& Session::entry_for(const scen::ScenarioSpace& space,
                                           const platform::ScenarioParams& params) {
  ThreadCache& cache = this_thread_cache();
  auto family = scen::platform_family(space.platform);
  const Key key{family.get(),  params.seed, params.m, params.ncom,
                params.wmin,   params.p,    params.iterations};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<ScenarioEntry>(std::move(family), params,
                                                            options_.eps))
             .first;
  }
  return *it->second;
}

const platform::Scenario& Session::scenario_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).scenario;
}

const sched::Estimator& Session::estimator_for(const platform::ScenarioParams& params) {
  return entry_for(scen::ScenarioSpace{}, params).estimator;
}

sim::SimulationResult Session::run_one(const Options& options,
                                       const scen::AvailabilityFamily& family,
                                       const platform::Scenario& scenario,
                                       const sched::Estimator& estimator,
                                       std::string_view heuristic, int trial,
                                       sim::ActivityTrace* trace) {
  // Availability and RANDOM-scheduler streams use the exact derivations of
  // expt::run_trial, so facade runs in the default space are byte-identical
  // to legacy runs; other spaces swap only the availability law.
  const auto availability = family.make_source(
      scenario.platform, expt::trial_seed(scenario, trial), options.init);
  auto scheduler = sched::make_scheduler(
      heuristic, estimator,
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial)));
  sim::Engine engine(scenario.platform, scenario.app, *availability, *scheduler,
                     options.engine(trace != nullptr));
  sim::SimulationResult result = engine.run();
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

sim::SimulationResult Session::run_trial(const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  return run_trial(scen::ScenarioSpace{}, params, heuristic, trial, trace);
}

sim::SimulationResult Session::run_trial(const scen::ScenarioSpace& space,
                                         const platform::ScenarioParams& params,
                                         std::string_view heuristic, int trial,
                                         sim::ActivityTrace* trace) {
  if (!sched::is_heuristic_name(heuristic)) {
    throw std::invalid_argument("Session::run_trial: unknown heuristic '" +
                                std::string(heuristic) + "'");
  }
  const auto availability = scen::availability_family(space.availability);
  const ScenarioEntry& entry = entry_for(space, params);
  return run_one(options_, *availability, entry.scenario, entry.estimator, heuristic,
                 trial, trace);
}

sim::SimulationResult Session::run_custom(const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) const {
  return run_custom(options_, platform, app, availability, scheduler, trace);
}

sim::SimulationResult Session::run_custom(const Options& options,
                                          const platform::Platform& platform,
                                          const model::Application& app,
                                          platform::AvailabilitySource& availability,
                                          sim::Scheduler& scheduler,
                                          sim::ActivityTrace* trace) {
  sim::Engine engine(platform, app, availability, scheduler,
                     options.engine(trace != nullptr));
  sim::SimulationResult result = engine.run();
  if (trace != nullptr) *trace = engine.trace();
  return result;
}

Session::RunStats Session::run(const ExperimentSpec& spec,
                               const std::vector<ResultSink*>& sinks,
                               const Progress& progress) {
  spec.validate();

  const std::vector<platform::ScenarioParams> scenarios = spec.scenarios();
  const std::vector<std::string>& heuristics = spec.resolved_heuristics();
  const Options& options = spec.options;
  // Resolve the space once for the whole sweep: workers never touch the
  // registry mutex, and a mid-sweep re-registration cannot split the sweep
  // across two worlds.
  const auto avail_family = scen::availability_family(spec.scenario_space.availability);
  const auto plat_family = scen::platform_family(spec.scenario_space.platform);

  for (ResultSink* sink : sinks) sink->begin(spec, scenarios, heuristics);

  // Serializes sink consumption and progress reporting (the documented
  // thread-safety contract); also orders the completion counter.
  std::mutex emit_mutex;
  std::atomic<std::size_t> rows{0};
  std::size_t done = 0;

  util::parallel_for(
      scenarios.size(),
      [&](std::size_t sc) {
        // One scenario = one task: the scenario and its estimator are built
        // here and only ever touched by this worker, so the non-thread-safe
        // estimator is shared across all heuristics x trials of the scenario
        // (cache warmth) without locking. Sweep scenarios are deliberately
        // NOT inserted into the per-thread caches: a full sweep visits each
        // scenario once, so caching would only grow memory.
        const platform::Scenario scenario = plat_family->make(scenarios[sc]);
        const sched::Estimator estimator(scenario.platform, scenario.app, options.eps);
        for (std::size_t h = 0; h < heuristics.size(); ++h) {
          for (int trial = 0; trial < spec.trials; ++trial) {
            const sim::SimulationResult result = run_one(
                options, *avail_family, scenario, estimator, heuristics[h], trial,
                nullptr);
            ResultRow row;
            row.heuristic = h;
            row.scenario = sc;
            row.trial = trial;
            row.name = &heuristics[h];
            row.family = &spec.scenario_space.availability;
            row.params = &scenarios[sc];
            row.result = &result;
            {
              const std::lock_guard<std::mutex> lock(emit_mutex);
              for (ResultSink* sink : sinks) sink->consume(row);
            }
            rows.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const std::lock_guard<std::mutex> lock(emit_mutex);
        ++done;
        if (progress) progress(done, scenarios.size());
      },
      options.threads);

  for (ResultSink* sink : sinks) sink->finish();

  return RunStats{scenarios.size(), rows.load()};
}

}  // namespace tcgrid::api
