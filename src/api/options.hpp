// The ONE options struct of the experiment facade.
//
// Before the facade existed, the same knobs were triplicated across
// sim::EngineOptions (slot cap, comm order, tracing), expt::RunOptions
// (slot cap again, estimator eps, initial states) and expt::SweepConfig
// (slot cap and eps a third time, plus threads and the master seed).
// api::Options unifies them; the legacy structs are derived from it at the
// point of use and remain only for source compatibility.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "platform/availability.hpp"
#include "sim/engine.hpp"

namespace tcgrid::api {

struct Options {
  // --- simulation engine ---------------------------------------------------
  long slot_cap = 1'000'000;  ///< fail a run when its makespan reaches this
  sim::CommOrder comm_order = sim::CommOrder::Enrollment;  ///< master service order
  bool record_trace = false;  ///< keep per-slot activity traces (costly)
  long avail_block = 64;      ///< slots per availability fill_block pull; any
                              ///< value >= 1 yields identical simulations
  bool fast_forward = true;   ///< event-horizon engine loop (DESIGN.md §8);
                              ///< results are bit-identical either way —
                              ///< false forces the legacy per-slot loop
                              ///< (ablation baseline)
  int trial_batch = 1;        ///< lockstep trial-batch width (DESIGN.md §13):
                              ///< Session::run replays this many trials of a
                              ///< (scenario, heuristic) cell side by side
                              ///< (sim::TrialBatch). 1 = plain sequential
                              ///< executor; results are bit-identical for
                              ///< every width (batch_test + bench digest
                              ///< gate). Clamped to the spec's trial count.

  // --- shared availability realizations (DESIGN.md §9) ---------------------
  /// Peak bytes one materialized availability realization may occupy during
  /// a sweep. Session::run materializes each (scenario, trial) realization
  /// once — per-worker run-length intervals plus the engine's digest
  /// bitsets — and replays it to every heuristic instead of regenerating
  /// the stream per run. A realization that would outgrow this budget is
  /// dropped and the unit falls back to live generation (bit-identical
  /// results either way — enforced by tests and the bench_sweep digest
  /// check). 0 disables sharing entirely (every run generates live), which
  /// is the ablation baseline bench_sweep compares against.
  std::size_t realization_budget = 64ull << 20;  ///< 64 MiB

  // --- estimator -----------------------------------------------------------
  double eps = 1e-6;  ///< truncation precision of the §V series

  // --- shared chain statistics (DESIGN.md §10) ------------------------------
  /// Share one markov::ChainStatsStore across every estimator the session
  /// builds: UR sub-matrices are interned by content, and the §V series math
  /// — per-chain survival tables, per-chain and multiset-keyed coupled
  /// statistics — is computed once per DISTINCT chain for all processors,
  /// heuristics, trials, scenario cells and worker threads (on a homogeneous
  /// platform, one entry per set size instead of p-choose-k). Results are
  /// bit-identical on and off (enforced by tests and the bench_estimator
  /// divergence gate); false gives every estimator a private store — the
  /// ablation baseline matching the old per-estimator caches.
  bool shared_chain_stats = true;

  // --- persistent chain statistics (DESIGN.md §14) --------------------------
  /// Directory of the disk-backed content-addressed chain-statistics cache
  /// (markov::PersistentChainStats). Empty (the default) = no persistence —
  /// the in-memory-only behavior above, and the ablation baseline. When
  /// set, the session's shared store is layered over mmap'd generation
  /// files in this directory: store misses consult disk first (survival
  /// tables are served straight from the read-only mapping), computed
  /// entries are flushed as new generations at session quiesce points (end
  /// of run(), clear_caches(), destruction), and any number of processes
  /// may share one directory. Results are bit-identical with and without a
  /// store (every persisted double is a pure function of chain bit content
  /// + eps; enforced by tests and the bench_estimator store gate).
  ///
  /// Session-level, like eps and shared_chain_stats (the store is built
  /// once per session): requires shared_chain_stats and a matching eps;
  /// ExperimentSpec::options.store_dir is ignored by Session::run, and the
  /// field is deliberately NOT part of the spec JSON wire format.
  std::string store_dir;

  // --- availability --------------------------------------------------------
  platform::InitialStates init = platform::InitialStates::Stationary;

  // --- execution -----------------------------------------------------------
  std::size_t threads = 0;   ///< worker threads for sweeps (0 = hardware)
  std::uint64_t seed = 42;   ///< master seed for scenario-grid derivation

  /// The engine view of these options. `force_trace` additionally turns on
  /// trace recording (used when a caller passes a trace out-parameter).
  [[nodiscard]] sim::EngineOptions engine(bool force_trace = false) const {
    sim::EngineOptions e;
    e.slot_cap = slot_cap;
    e.record_trace = record_trace || force_trace;
    e.comm_order = comm_order;
    e.avail_block = avail_block;
    e.fast_forward = fast_forward;
    e.trial_batch = trial_batch;
    return e;
  }
};

}  // namespace tcgrid::api
