// Declarative description of an experiment: what to run, not how.
//
// An ExperimentSpec names a scenario population (either the paper's factorial
// grid or an explicit scenario list), the scenario space it lives in (which
// availability/platform families, by registry name), a heuristic set, a
// trial count and one api::Options block. A Session turns the spec into
// simulations; ResultSinks receive the outcomes. New workloads are a spec,
// not 100 lines of plumbing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/options.hpp"
#include "platform/scenario.hpp"
#include "scen/space.hpp"

namespace tcgrid::api {

// ---------------------------------------------------------- unit addressing ----
// The stable id of one (scenario, trial) work unit. Every executor that
// partitions a sweep — Session::run's queue, the serve daemon's dispatch
// bitmap and units.log commit records, and the shard coordinator's leases —
// addresses units by this SAME flat index, so a unit id written by one
// process (a shard's checkpoint, a coordinator's lease) means the identical
// simulation in every other process running the same spec. The encoding is
// trial-minor: all trials of scenario 0 first, then scenario 1, matching the
// trial-major replay order that keeps availability realizations hot.

/// unit = scenario * trials + trial.
[[nodiscard]] constexpr std::size_t unit_index(std::size_t scenario, std::size_t trial,
                                               std::size_t trials) noexcept {
  return scenario * trials + trial;
}
/// Inverse of unit_index: the scenario coordinate.
[[nodiscard]] constexpr std::size_t unit_scenario(std::size_t unit,
                                                  std::size_t trials) noexcept {
  return unit / trials;
}
/// Inverse of unit_index: the trial coordinate.
[[nodiscard]] constexpr std::size_t unit_trial(std::size_t unit,
                                               std::size_t trials) noexcept {
  return unit % trials;
}

/// The paper's factorial scenario grid (§VII-A): the cross product of
/// m x ncom x wmin, with `scenarios_per_cell` random scenarios per cell.
/// Scenario seeds are derived from Options::seed, so a grid is reproducible.
struct ScenarioGrid {
  std::vector<int> ms{5};
  std::vector<int> ncoms{5, 10, 20};
  std::vector<long> wmins{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  int scenarios_per_cell = 10;
  int p = 20;           ///< processors per scenario (paper fixes 20)
  int iterations = 10;  ///< application iterations to makespan (paper fixes 10)
};

/// A full experiment: scenarios x heuristics x trials, plus all knobs.
struct ExperimentSpec {
  /// Factorial grid, used when `explicit_scenarios` is empty.
  ScenarioGrid grid;

  /// Which world the scenario population lives in (family registry names,
  /// see scen/scen.hpp). The default is the paper's world: platform family
  /// "paper" and availability family "markov", which reproduces the plain
  /// ScenarioGrid sweep bit for bit. Scenario seeds are space-independent,
  /// so sweeps over several spaces are paired at the platform level.
  scen::ScenarioSpace scenario_space;

  /// Explicit scenario list; when non-empty it replaces the grid entirely.
  std::vector<platform::ScenarioParams> explicit_scenarios;

  /// Heuristic names (registry names). Empty = the paper's 17.
  std::vector<std::string> heuristics;

  int trials = 10;  ///< paired trials per (heuristic, scenario)

  Options options;

  /// The resolved scenario population: `explicit_scenarios` if given,
  /// otherwise the grid enumerated cell-major (scenarios_per_cell
  /// consecutive entries per cell, seeds derived from options.seed).
  [[nodiscard]] std::vector<platform::ScenarioParams> scenarios() const;

  /// The resolved heuristic set (all 17 when `heuristics` is empty).
  [[nodiscard]] const std::vector<std::string>& resolved_heuristics() const;

  /// Number of (scenario, trial) units in this spec — the exclusive upper
  /// bound of the unit_index address space. Materializes scenarios() to
  /// count them; cache the result on hot paths.
  [[nodiscard]] std::size_t unit_count() const {
    return scenarios().size() * static_cast<std::size_t>(trials);
  }

  /// Validate the spec before any simulation runs: every heuristic name must
  /// be registered and the counts positive. Throws std::invalid_argument
  /// naming the offending field — failing here, up front, replaces the old
  /// behaviour of dying mid-sweep inside run_trial.
  void validate() const;

  /// The paper's exact experimental scale for one m (10 scenarios/cell,
  /// 10 trials, 10^6-slot cap).
  [[nodiscard]] static ExperimentSpec paper(int m);

  /// The reduced sweep (DESIGN.md §2): same factorial structure, 2
  /// scenarios/cell x 2 trials, configurable cap. Minutes, not hours.
  [[nodiscard]] static ExperimentSpec reduced(int m, long slot_cap);
};

}  // namespace tcgrid::api
