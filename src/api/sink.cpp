#include "api/sink.hpp"

#include <ostream>
#include <stdexcept>

#include "api/spec.hpp"
#include "util/csv.hpp"

namespace tcgrid::api {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    throw std::runtime_error("cannot open result sink file: " + path);
  }
  return file;
}

// ---------------------------------------------------------- AggregateSink ----

void AggregateSink::begin(const ExperimentSpec& spec,
                          const std::vector<platform::ScenarioParams>& scenarios,
                          const std::vector<std::string>& heuristics) {
  results_ = expt::SweepResults{};
  results_.heuristics = heuristics;
  results_.scenarios = scenarios;
  results_.outcomes.assign(heuristics.size(),
                           std::vector<expt::ScenarioOutcomes>(scenarios.size()));
  for (auto& per_scenario : results_.outcomes) {
    for (auto& trials : per_scenario) {
      trials.resize(static_cast<std::size_t>(spec.trials));
    }
  }
}

void AggregateSink::consume(const ResultRow& row) {
  results_.outcomes[row.heuristic][row.scenario][static_cast<std::size_t>(row.trial)] =
      expt::TrialOutcome{row.result->success, row.result->makespan};
}

// ---------------------------------------------------------------- CsvSink ----

const std::vector<std::string>& CsvSink::header() {
  static const std::vector<std::string> h = {
      "heuristic", "family",   "m",        "ncom",      "wmin",
      "scenario_seed", "trial", "success", "makespan",  "restarts",
      "reconfigs", "idle_slots"};
  return h;
}

void CsvSink::begin(const ExperimentSpec&,
                    const std::vector<platform::ScenarioParams>&,
                    const std::vector<std::string>&) {
  // One header even when the sink accumulates several runs (e.g. a sweep
  // per availability family streaming into one file).
  if (header_written_) return;
  header_written_ = true;
  bool first = true;
  for (const auto& col : header()) {
    *out_ << (first ? "" : ",") << col;
    first = false;
  }
  *out_ << '\n';
}

void CsvSink::consume(const ResultRow& row) {
  const auto& p = *row.params;
  const auto& r = *row.result;
  // Both string fields pass through RFC-4180 quoting: registry names are
  // caller-chosen, so commas, quotes and newlines must round-trip, not
  // corrupt the stream.
  *out_ << util::CsvWriter::escape(*row.name) << ','
        << util::CsvWriter::escape(row.family != nullptr ? *row.family : std::string())
        << ',' << p.m << ',' << p.ncom << ',' << p.wmin << ',' << p.seed << ','
        << row.trial << ',' << (r.success ? '1' : '0') << ',' << r.makespan << ','
        << r.total_restarts << ',' << r.total_reconfigurations << ',' << r.idle_slots
        << '\n';
}

void CsvSink::finish() {
  out_->flush();
  if (out_->fail()) {
    throw std::runtime_error("CsvSink: write failure (disk full or closed stream?)");
  }
}

// -------------------------------------------------------------- JsonlSink ----

namespace {

// Registry names are caller-chosen strings; escape everything JSON requires
// (quotes, backslashes, control characters) so no name can corrupt the
// stream.
void write_json_string(std::ostream& out, const std::string& s) {
  static const char* hex = "0123456789abcdef";
  out << '"';
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') out << '\\' << c;
    else if (c == '\n') out << "\\n";
    else if (c == '\r') out << "\\r";
    else if (c == '\t') out << "\\t";
    else if (u < 0x20) out << "\\u00" << hex[u >> 4] << hex[u & 0xf];
    else out << c;
  }
  out << '"';
}

}  // namespace

void JsonlSink::consume(const ResultRow& row) {
  const auto& p = *row.params;
  const auto& r = *row.result;
  *out_ << R"({"heuristic":)";
  write_json_string(*out_, *row.name);
  *out_ << R"(,"family":)";
  write_json_string(*out_, row.family != nullptr ? *row.family : std::string());
  *out_ << R"(,"m":)" << p.m << R"(,"ncom":)" << p.ncom << R"(,"wmin":)" << p.wmin
        << R"(,"scenario_seed":)" << p.seed << R"(,"trial":)" << row.trial
        << R"(,"success":)" << (r.success ? "true" : "false") << R"(,"makespan":)"
        << r.makespan << R"(,"iterations":)" << r.iterations_completed
        << R"(,"restarts":)" << r.total_restarts << R"(,"reconfigs":)"
        << r.total_reconfigurations << R"(,"idle_slots":)" << r.idle_slots << "}\n";
}

void JsonlSink::finish() {
  out_->flush();
  if (out_->fail()) {
    throw std::runtime_error("JsonlSink: write failure (disk full or closed stream?)");
  }
}

}  // namespace tcgrid::api
