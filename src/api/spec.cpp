#include "api/spec.hpp"

#include <stdexcept>

#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace tcgrid::api {

std::vector<platform::ScenarioParams> ExperimentSpec::scenarios() const {
  if (!explicit_scenarios.empty()) return explicit_scenarios;
  // Cell-major enumeration. Seeds mix (cell, s) through two chained
  // SplitMix64 derivations (util::derive_seed2): distinct cells own disjoint
  // scenario-seed streams by construction. The historical additive scheme
  // (derive_seed(seed, cell * 1000 + s)) collided across cells whenever
  // scenarios_per_cell exceeded 1000 — cell c's scenario 1000 WAS cell
  // (c+1)'s scenario 0, silently duplicating platforms across cells.
  std::vector<platform::ScenarioParams> out;
  out.reserve(grid.ms.size() * grid.ncoms.size() * grid.wmins.size() *
              static_cast<std::size_t>(grid.scenarios_per_cell));
  std::uint64_t cell = 0;
  for (int m : grid.ms) {
    for (int ncom : grid.ncoms) {
      for (long wmin : grid.wmins) {
        for (int s = 0; s < grid.scenarios_per_cell; ++s) {
          platform::ScenarioParams params;
          params.m = m;
          params.ncom = ncom;
          params.wmin = wmin;
          params.p = grid.p;
          params.iterations = grid.iterations;
          params.seed =
              util::derive_seed2(options.seed, cell, static_cast<std::uint64_t>(s));
          out.push_back(params);
        }
        ++cell;
      }
    }
  }
  return out;
}

const std::vector<std::string>& ExperimentSpec::resolved_heuristics() const {
  return heuristics.empty() ? sched::all_heuristic_names() : heuristics;
}

void ExperimentSpec::validate() const {
  for (const auto& name : resolved_heuristics()) {
    if (!sched::is_heuristic_name(name)) {
      throw std::invalid_argument("ExperimentSpec: unknown heuristic '" + name +
                                  "' (see sched::all_heuristic_names / "
                                  "extension_heuristic_names)");
    }
  }
  scenario_space.validate();
  if (trials <= 0) throw std::invalid_argument("ExperimentSpec: trials must be >= 1");
  if (explicit_scenarios.empty()) {
    if (grid.ms.empty() || grid.ncoms.empty() || grid.wmins.empty() ||
        grid.scenarios_per_cell <= 0) {
      throw std::invalid_argument("ExperimentSpec: empty scenario grid");
    }
  }
  if (options.slot_cap <= 0) {
    throw std::invalid_argument("ExperimentSpec: slot_cap must be >= 1");
  }
  if (options.avail_block <= 0) {
    // Catch it here: the engine's own check would throw inside a worker
    // task, which terminates the process (see util/thread_pool.hpp).
    throw std::invalid_argument("ExperimentSpec: avail_block must be >= 1");
  }
  if (options.trial_batch <= 0) {
    // Same rationale: fail before any worker constructs an engine.
    throw std::invalid_argument("ExperimentSpec: trial_batch must be >= 1");
  }
  if (options.eps <= 0.0) {
    throw std::invalid_argument("ExperimentSpec: eps must be > 0");
  }
}

ExperimentSpec ExperimentSpec::paper(int m) {
  ExperimentSpec spec;
  spec.grid.ms = {m};
  spec.grid.scenarios_per_cell = 10;
  spec.trials = 10;
  spec.options.slot_cap = 1'000'000;
  return spec;
}

ExperimentSpec ExperimentSpec::reduced(int m, long slot_cap) {
  ExperimentSpec spec;
  spec.grid.ms = {m};
  spec.grid.scenarios_per_cell = 2;
  spec.trials = 2;
  spec.options.slot_cap = slot_cap;
  return spec;
}

}  // namespace tcgrid::api
