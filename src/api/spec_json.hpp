// Full JSON round-trip for ExperimentSpec (DESIGN.md §11).
//
// The serve daemon accepts experiment specs over the wire, and checkpoints
// them in job manifests; both need every field of the spec — the grid, the
// scenario space (families by registry name), explicit scenarios, heuristic
// names, trials and the complete Options block — to serialize and parse
// losslessly. spec_to_json(spec_from_json(j)) reproduces the canonical form
// of j, and spec_from_json(spec_to_json(s)) reproduces s exactly (scenario
// seeds are full-range uint64 and survive bit-exactly; see util/json.hpp).
//
// Parsing is strict: unknown keys, wrong types, out-of-range values and
// malformed enum names all throw std::invalid_argument naming the offending
// field by dotted path ("options.slot_cap", "explicit_scenarios[3].seed"),
// so a remote client gets an actionable error instead of a mid-sweep death.
// Structural validation only — registry-name existence and positivity
// checks remain ExperimentSpec::validate(), which callers run next.
#pragma once

#include <string>
#include <string_view>

#include "api/spec.hpp"
#include "util/json.hpp"

namespace tcgrid::api {

/// Every field of the spec, emitted in a fixed canonical order.
[[nodiscard]] util::json::Value spec_to_json(const ExperimentSpec& spec);

/// spec_to_json, serialized compactly (deterministic bytes).
[[nodiscard]] std::string spec_to_json_string(const ExperimentSpec& spec);

/// Parse a spec. Absent fields keep their defaults (so "{}" is the default
/// spec); unknown or ill-typed fields throw std::invalid_argument naming
/// the field.
[[nodiscard]] ExperimentSpec spec_from_json(const util::json::Value& value);

/// Parse from text (throws std::invalid_argument on JSON syntax errors with
/// the byte offset, or on field errors with the field path).
[[nodiscard]] ExperimentSpec spec_from_json_string(std::string_view text);

}  // namespace tcgrid::api
