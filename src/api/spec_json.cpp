#include "api/spec_json.hpp"

#include <limits>
#include <stdexcept>

namespace tcgrid::api {

namespace json = util::json;

namespace {

// ------------------------------------------------------------------- emit ----

json::Value grid_to_json(const ScenarioGrid& g) {
  json::Array ms, ncoms, wmins;
  for (int m : g.ms) ms.emplace_back(m);
  for (int n : g.ncoms) ncoms.emplace_back(n);
  for (long w : g.wmins) wmins.emplace_back(w);
  return json::Object{
      {"ms", std::move(ms)},
      {"ncoms", std::move(ncoms)},
      {"wmins", std::move(wmins)},
      {"scenarios_per_cell", g.scenarios_per_cell},
      {"p", g.p},
      {"iterations", g.iterations},
  };
}

json::Value scenario_to_json(const platform::ScenarioParams& s) {
  return json::Object{
      {"m", s.m},           {"ncom", s.ncom}, {"wmin", s.wmin},
      {"p", s.p},           {"iterations", s.iterations},
      {"seed", s.seed},
  };
}

const char* comm_order_name(sim::CommOrder o) {
  switch (o) {
    case sim::CommOrder::Enrollment: return "enrollment";
    case sim::CommOrder::FewestFirst: return "fewest_first";
    case sim::CommOrder::MostFirst: return "most_first";
  }
  throw std::invalid_argument("spec_to_json: invalid CommOrder value");
}

const char* init_name(platform::InitialStates i) {
  switch (i) {
    case platform::InitialStates::AllUp: return "all_up";
    case platform::InitialStates::Stationary: return "stationary";
  }
  throw std::invalid_argument("spec_to_json: invalid InitialStates value");
}

json::Value options_to_json(const Options& o) {
  return json::Object{
      {"slot_cap", o.slot_cap},
      {"comm_order", comm_order_name(o.comm_order)},
      {"record_trace", o.record_trace},
      {"avail_block", o.avail_block},
      {"fast_forward", o.fast_forward},
      {"trial_batch", o.trial_batch},
      {"realization_budget", static_cast<unsigned long long>(o.realization_budget)},
      {"eps", o.eps},
      {"shared_chain_stats", o.shared_chain_stats},
      {"init", init_name(o.init)},
      {"threads", static_cast<unsigned long long>(o.threads)},
      {"seed", o.seed},
  };
}

// ------------------------------------------------------------------ parse ----

[[noreturn]] void field_fail(const std::string& path, const std::string& what) {
  throw std::invalid_argument(path + ": " + what);
}

/// One object field being read, carrying its dotted path for error messages.
struct Field {
  const json::Value& v;
  std::string path;
};

const json::Object& expect_object(const Field& f) {
  if (!f.v.is_object()) field_fail(f.path, "expected a JSON object");
  return f.v.as_object();
}

/// Visit every member of an object through `handle(key, Field)`; unknown
/// keys (handle returns false) are an error — a typo'd option must not
/// silently fall back to its default.
template <typename Handler>
void for_each_member(const Field& f, Handler&& handle) {
  for (const json::Member& m : expect_object(f)) {
    if (!handle(m.first, Field{m.second, f.path + "." + m.first})) {
      field_fail(f.path + "." + m.first, "unknown field");
    }
  }
}

long long get_int(const Field& f, long long lo, long long hi) {
  if (!f.v.is_integer()) field_fail(f.path, "expected an integer");
  long long v = 0;
  try {
    v = f.v.as_int();
  } catch (const std::invalid_argument&) {
    field_fail(f.path, "integer out of range");
  }
  if (v < lo || v > hi) {
    field_fail(f.path, "value " + std::to_string(v) + " outside [" + std::to_string(lo) +
                           ", " + std::to_string(hi) + "]");
  }
  return v;
}

int get_i32(const Field& f) {
  return static_cast<int>(get_int(f, std::numeric_limits<int>::min(),
                                  std::numeric_limits<int>::max()));
}

long get_long(const Field& f) {
  return static_cast<long>(get_int(f, std::numeric_limits<long>::min(),
                                   std::numeric_limits<long>::max()));
}

unsigned long long get_u64(const Field& f) {
  if (!f.v.is_integer()) field_fail(f.path, "expected an unsigned integer");
  try {
    return f.v.as_uint();
  } catch (const std::invalid_argument&) {
    field_fail(f.path, "expected a non-negative integer");
  }
}

bool get_bool(const Field& f) {
  if (!f.v.is_bool()) field_fail(f.path, "expected a boolean");
  return f.v.as_bool();
}

double get_double(const Field& f) {
  if (!f.v.is_number()) field_fail(f.path, "expected a number");
  return f.v.as_double();
}

std::string get_string(const Field& f) {
  if (!f.v.is_string()) field_fail(f.path, "expected a string");
  return f.v.as_string();
}

const json::Array& get_array(const Field& f) {
  if (!f.v.is_array()) field_fail(f.path, "expected an array");
  return f.v.as_array();
}

template <typename T, typename Get>
std::vector<T> get_vector(const Field& f, Get&& get) {
  std::vector<T> out;
  std::size_t i = 0;
  for (const json::Value& e : get_array(f)) {
    out.push_back(get(Field{e, f.path + "[" + std::to_string(i) + "]"}));
    ++i;
  }
  return out;
}

sim::CommOrder parse_comm_order(const Field& f) {
  const std::string s = get_string(f);
  if (s == "enrollment") return sim::CommOrder::Enrollment;
  if (s == "fewest_first") return sim::CommOrder::FewestFirst;
  if (s == "most_first") return sim::CommOrder::MostFirst;
  field_fail(f.path, "unknown comm order '" + s +
                         "' (expected enrollment | fewest_first | most_first)");
}

platform::InitialStates parse_init(const Field& f) {
  const std::string s = get_string(f);
  if (s == "stationary") return platform::InitialStates::Stationary;
  if (s == "all_up") return platform::InitialStates::AllUp;
  field_fail(f.path, "unknown initial-states mode '" + s +
                         "' (expected stationary | all_up)");
}

ScenarioGrid parse_grid(const Field& f) {
  ScenarioGrid g;
  for_each_member(f, [&](const std::string& key, const Field& m) {
    if (key == "ms") g.ms = get_vector<int>(m, get_i32);
    else if (key == "ncoms") g.ncoms = get_vector<int>(m, get_i32);
    else if (key == "wmins") g.wmins = get_vector<long>(m, get_long);
    else if (key == "scenarios_per_cell") g.scenarios_per_cell = get_i32(m);
    else if (key == "p") g.p = get_i32(m);
    else if (key == "iterations") g.iterations = get_i32(m);
    else return false;
    return true;
  });
  return g;
}

scen::ScenarioSpace parse_space(const Field& f) {
  scen::ScenarioSpace space;
  for_each_member(f, [&](const std::string& key, const Field& m) {
    if (key == "availability") space.availability = get_string(m);
    else if (key == "platform") space.platform = get_string(m);
    else return false;
    return true;
  });
  return space;
}

platform::ScenarioParams parse_scenario(const Field& f) {
  platform::ScenarioParams s;
  for_each_member(f, [&](const std::string& key, const Field& m) {
    if (key == "m") s.m = get_i32(m);
    else if (key == "ncom") s.ncom = get_i32(m);
    else if (key == "wmin") s.wmin = get_long(m);
    else if (key == "p") s.p = get_i32(m);
    else if (key == "iterations") s.iterations = get_i32(m);
    else if (key == "seed") s.seed = get_u64(m);
    else return false;
    return true;
  });
  return s;
}

Options parse_options(const Field& f) {
  Options o;
  for_each_member(f, [&](const std::string& key, const Field& m) {
    if (key == "slot_cap") o.slot_cap = get_long(m);
    else if (key == "comm_order") o.comm_order = parse_comm_order(m);
    else if (key == "record_trace") o.record_trace = get_bool(m);
    else if (key == "avail_block") o.avail_block = get_long(m);
    else if (key == "fast_forward") o.fast_forward = get_bool(m);
    // Bounded here, not just in validate(): a zero/negative width must fail
    // at the wire with the dotted path, before a spec object even exists.
    else if (key == "trial_batch")
      o.trial_batch = static_cast<int>(
          get_int(m, 1, std::numeric_limits<int>::max()));
    else if (key == "realization_budget")
      o.realization_budget = static_cast<std::size_t>(get_u64(m));
    else if (key == "eps") o.eps = get_double(m);
    else if (key == "shared_chain_stats") o.shared_chain_stats = get_bool(m);
    else if (key == "init") o.init = parse_init(m);
    else if (key == "threads") o.threads = static_cast<std::size_t>(get_u64(m));
    else if (key == "seed") o.seed = get_u64(m);
    else return false;
    return true;
  });
  return o;
}

}  // namespace

json::Value spec_to_json(const ExperimentSpec& spec) {
  json::Array scenarios;
  for (const auto& s : spec.explicit_scenarios) scenarios.push_back(scenario_to_json(s));
  json::Array heuristics;
  for (const auto& h : spec.heuristics) heuristics.emplace_back(h);
  return json::Object{
      {"grid", grid_to_json(spec.grid)},
      {"scenario_space",
       json::Object{{"availability", spec.scenario_space.availability},
                    {"platform", spec.scenario_space.platform}}},
      {"explicit_scenarios", std::move(scenarios)},
      {"heuristics", std::move(heuristics)},
      {"trials", spec.trials},
      {"options", options_to_json(spec.options)},
  };
}

std::string spec_to_json_string(const ExperimentSpec& spec) {
  return json::dump(spec_to_json(spec));
}

ExperimentSpec spec_from_json(const json::Value& value) {
  ExperimentSpec spec;
  for_each_member(Field{value, "spec"}, [&](const std::string& key, const Field& m) {
    if (key == "grid") spec.grid = parse_grid(m);
    else if (key == "scenario_space") spec.scenario_space = parse_space(m);
    else if (key == "explicit_scenarios")
      spec.explicit_scenarios =
          get_vector<platform::ScenarioParams>(m, parse_scenario);
    else if (key == "heuristics") spec.heuristics = get_vector<std::string>(m, get_string);
    else if (key == "trials") spec.trials = get_i32(m);
    else if (key == "options") spec.options = parse_options(m);
    else return false;
    return true;
  });
  return spec;
}

ExperimentSpec spec_from_json_string(std::string_view text) {
  return spec_from_json(json::parse(text));
}

}  // namespace tcgrid::api
