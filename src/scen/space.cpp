#include "scen/space.hpp"

#include <stdexcept>
#include <vector>

#include "platform/semi_markov.hpp"

namespace tcgrid::scen {

void ScenarioSpace::validate() const {
  // Resolve both names so the error message lists what IS registered.
  (void)scen::availability_family(availability);
  (void)scen::platform_family(platform);
}

platform::Scenario instantiate(const ScenarioSpace& space,
                               const platform::ScenarioParams& params) {
  return scen::platform_family(space.platform)->make(params);
}

std::unique_ptr<platform::AvailabilitySource> make_availability(
    const ScenarioSpace& space, const platform::Platform& platform,
    std::uint64_t seed, platform::InitialStates init) {
  return scen::availability_family(space.availability)->make_source(platform, seed, init);
}

platform::Platform fit_markov_platform(const platform::Platform& truth,
                                       const AvailabilityFamily& family,
                                       long train_slots, std::uint64_t seed) {
  if (train_slots < 2) {
    throw std::invalid_argument("fit_markov_platform: need >= 2 training slots");
  }
  const auto source =
      family.make_source(truth, seed, platform::InitialStates::Stationary);
  const platform::StateTimeline training = platform::record(*source, train_slots);
  std::vector<platform::Processor> believed(truth.procs().begin(), truth.procs().end());
  for (int q = 0; q < truth.size(); ++q) {
    believed[static_cast<std::size_t>(q)].availability =
        platform::fit_transition_matrix(training, q);
  }
  return platform::Platform(std::move(believed), truth.ncom());
}

}  // namespace tcgrid::scen
