// String-named registry of scenario-model families, mirroring the heuristic
// registry (sched/registry.hpp): experiment specs refer to worlds by name,
// result rows carry the name, and adding a world is one registration call.
//
// The built-in families are installed on first use:
//
//   availability: "markov" (the paper's §VII-A model), "weibull"
//                 (semi-Markov, Weibull sojourns, shape 0.7), "daynight"
//                 (cyclostationary day/night modulation)
//   platform:     "paper" (20 i.i.d. processors), "clusters"
//                 (4 heterogeneous clusters sharing speed and chain)
//
// Trace-replay families need a concrete timeline, so they are registered by
// the caller: register_availability_family(make_trace_family("mytrace",
// {...})). Registration is thread-safe; re-registering a name replaces the
// family (tests and notebooks overwrite freely). Lookups return shared_ptr,
// so a family stays valid for sources already constructed from it even if
// its name is re-bound mid-sweep.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "scen/family.hpp"

namespace tcgrid::scen {

/// Publish `family` under family->name(). Replaces any previous binding.
void register_availability_family(std::shared_ptr<const AvailabilityFamily> family);
void register_platform_family(std::shared_ptr<const PlatformFamily> family);

/// Look up a family by name; throws std::invalid_argument (listing the
/// registered names) when unknown.
[[nodiscard]] std::shared_ptr<const AvailabilityFamily> availability_family(
    std::string_view name);
[[nodiscard]] std::shared_ptr<const PlatformFamily> platform_family(
    std::string_view name);

[[nodiscard]] bool is_availability_family(std::string_view name);
[[nodiscard]] bool is_platform_family(std::string_view name);

/// Registered names, sorted (built-ins included).
[[nodiscard]] std::vector<std::string> availability_family_names();
[[nodiscard]] std::vector<std::string> platform_family_names();

}  // namespace tcgrid::scen
