// ScenarioSpace: which world (family pair) a scenario population lives in.
//
// Crossing a space with the paper's (m, ncom, wmin) grid is what turns "the
// experiment of §VII-A" into "the experiment of §VII-A under Weibull
// availability on clustered platforms" without touching any driver code:
// api::ExperimentSpec carries a ScenarioSpace (defaulting to the paper's
// world, bit-identically), and api::Session resolves it through the family
// registry per scenario and per trial.
//
// Scenario seeds are space-independent on purpose: the same (grid cell,
// scenario index) yields the same platform draw in every availability
// family, so cross-family comparisons are paired at the platform level just
// as trials are paired at the availability level within a family.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "scen/registry.hpp"

namespace tcgrid::scen {

struct ScenarioSpace {
  std::string availability = "markov";  ///< AvailabilityFamily registry name
  std::string platform = "paper";       ///< PlatformFamily registry name

  /// Throws std::invalid_argument (naming the field and the registered
  /// alternatives) unless both names are registered.
  void validate() const;

  [[nodiscard]] bool operator==(const ScenarioSpace&) const = default;
};

/// The default space: the paper's §VII-A world.
[[nodiscard]] inline ScenarioSpace paper_space() { return ScenarioSpace{}; }

/// Instantiate the scenario for a grid cell in this space (resolves the
/// platform family through the registry).
[[nodiscard]] platform::Scenario instantiate(const ScenarioSpace& space,
                                             const platform::ScenarioParams& params);

/// Availability stream for one trial of an instantiated scenario (resolves
/// the availability family through the registry).
[[nodiscard]] std::unique_ptr<platform::AvailabilitySource> make_availability(
    const ScenarioSpace& space, const platform::Platform& platform,
    std::uint64_t seed, platform::InitialStates init);

/// The §VII-B model-misspecification substrate: record `train_slots` of the
/// named availability family running on `truth` and fit per-processor Markov
/// chains by maximum likelihood (platform::fit_transition_matrix). The
/// returned platform has the same speeds/ids but the fitted ("flawed")
/// chains — build an Estimator from it to give the Markov heuristics a
/// wrong belief while simulating against the true process.
[[nodiscard]] platform::Platform fit_markov_platform(const platform::Platform& truth,
                                                     const AvailabilityFamily& family,
                                                     long train_slots,
                                                     std::uint64_t seed);

}  // namespace tcgrid::scen
