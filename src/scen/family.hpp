// Scenario-model families: the pluggable "what does the world look like"
// axis of an experiment (see DESIGN.md §7).
//
// The paper evaluates its heuristics in one world — 20 processors with
// uniform-random speeds, each following an independent homogeneous Markov
// chain. Its §VII-B names the open question: what happens when reality is
// NOT that world (Weibull-tailed sojourns, diurnal cycles, recorded
// traces)? A family packages one such world behind a string name:
//
//   * an AvailabilityFamily turns (platform, trial seed) into an
//     AvailabilitySource — the stochastic law of processor availability;
//   * a PlatformFamily turns ScenarioParams into a Scenario — how speeds,
//     chains and the application are drawn for a grid cell.
//
// Families are registered by name (scen/registry.hpp) and crossed with the
// paper's (m, ncom, wmin) grid by a ScenarioSpace (scen/space.hpp), so a
// new world is a registration call, not a new experiment driver. Every
// family must obey the paired-trial law: the source it returns is a pure
// function of (platform, seed, init), and it draws identically however it
// is pulled (per-slot or block-stepped).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "platform/trace_io.hpp"

namespace tcgrid::scen {

/// Stochastic law of per-slot processor availability, keyed by name.
class AvailabilityFamily {
 public:
  virtual ~AvailabilityFamily() = default;

  /// Registry name (stable identifier; flows into result sinks).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Availability stream for one trial of a scenario. Must be a pure
  /// function of the arguments (the paired-comparison contract). `init` is
  /// the session's initial-state policy; families with no notion of a
  /// stationary start may ignore it.
  [[nodiscard]] virtual std::unique_ptr<platform::AvailabilitySource> make_source(
      const platform::Platform& platform, std::uint64_t seed,
      platform::InitialStates init) const = 0;
};

/// How a grid cell's ScenarioParams become a concrete platform+application.
class PlatformFamily {
 public:
  virtual ~PlatformFamily() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Deterministic in `params` (including params.seed).
  [[nodiscard]] virtual platform::Scenario make(
      const platform::ScenarioParams& params) const = 0;
};

// ------------------------------------------------------------- parameters ----

/// The paper's model (§VII-A): homogeneous per-processor Markov chains.
struct MarkovFamilyParams {};

/// Semi-Markov availability with Weibull sojourns matched (in embedded
/// chain and mean holding time) to each processor's Markov chain — the
/// §VII-B "reality is heavy-tailed" world.
struct WeibullFamilyParams {
  double shape = 0.7;  ///< Weibull shape; < 1 = heavy tails, 1 = memoryless
};

/// Replay of a recorded timeline, rotated per seed so paired trials see
/// different windows of the same trace.
struct TraceFamilyParams {
  std::shared_ptr<const platform::StateTimeline> timeline;
  bool rotate = true;  ///< false: every trial starts at row 0
};

/// Day/night modulation: the platform's chains govern "day" slots, a calmer
/// scaled chain governs "night" slots (platform/cyclostationary.hpp).
struct DayNightFamilyParams {
  long period = 1000;        ///< slots per day/night cycle
  long day_slots = 500;      ///< leading slots of each period that are "day"
  double night_calm = 0.25;  ///< departure-probability scale at night (< 1)
};

/// Heterogeneous clusters: processors come in `clusters` groups that share
/// one speed and one availability chain (lab machines alike within a lab,
/// different across labs) instead of 20 i.i.d. draws.
struct ClusterPlatformParams {
  int clusters = 4;
};

// -------------------------------------------------------------- factories ----
// Families are immutable once built; registering the returned pointer
// (scen/registry.hpp) publishes it under its name.

[[nodiscard]] std::shared_ptr<const AvailabilityFamily> make_markov_family(
    std::string name = "markov", MarkovFamilyParams params = {});

[[nodiscard]] std::shared_ptr<const AvailabilityFamily> make_weibull_family(
    std::string name = "weibull", WeibullFamilyParams params = {});

/// Throws std::invalid_argument on an empty/ragged timeline.
[[nodiscard]] std::shared_ptr<const AvailabilityFamily> make_trace_family(
    std::string name, TraceFamilyParams params);

[[nodiscard]] std::shared_ptr<const AvailabilityFamily> make_daynight_family(
    std::string name = "daynight", DayNightFamilyParams params = {});

[[nodiscard]] std::shared_ptr<const PlatformFamily> make_paper_platform_family(
    std::string name = "paper");

[[nodiscard]] std::shared_ptr<const PlatformFamily> make_cluster_platform_family(
    std::string name = "clusters", ClusterPlatformParams params = {});

}  // namespace tcgrid::scen
