#include "scen/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace tcgrid::scen {

namespace {

template <typename Family>
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::shared_ptr<const Family>, std::less<>> families;

  void install(std::shared_ptr<const Family> family) {
    if (family == nullptr) throw std::invalid_argument("register family: null");
    const std::lock_guard<std::mutex> lock(mutex);
    families[family->name()] = std::move(family);
  }

  std::shared_ptr<const Family> find(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = families.find(name);
    return it == families.end() ? nullptr : it->second;
  }

  std::vector<std::string> names() {
    const std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out;
    out.reserve(families.size());
    for (const auto& [name, family] : families) out.push_back(name);
    return out;
  }
};

Registry<AvailabilityFamily>& availability_registry() {
  static Registry<AvailabilityFamily>& reg = *[] {
    auto* r = new Registry<AvailabilityFamily>();
    r->install(make_markov_family());
    r->install(make_weibull_family());
    r->install(make_daynight_family());
    return r;
  }();
  return reg;
}

Registry<PlatformFamily>& platform_registry() {
  static Registry<PlatformFamily>& reg = *[] {
    auto* r = new Registry<PlatformFamily>();
    r->install(make_paper_platform_family());
    r->install(make_cluster_platform_family());
    return r;
  }();
  return reg;
}

std::string known(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

void register_availability_family(std::shared_ptr<const AvailabilityFamily> family) {
  availability_registry().install(std::move(family));
}

void register_platform_family(std::shared_ptr<const PlatformFamily> family) {
  platform_registry().install(std::move(family));
}

std::shared_ptr<const AvailabilityFamily> availability_family(std::string_view name) {
  if (auto family = availability_registry().find(name)) return family;
  throw std::invalid_argument("unknown availability family '" + std::string(name) +
                              "' (registered: " + known(availability_family_names()) +
                              ")");
}

std::shared_ptr<const PlatformFamily> platform_family(std::string_view name) {
  if (auto family = platform_registry().find(name)) return family;
  throw std::invalid_argument("unknown platform family '" + std::string(name) +
                              "' (registered: " + known(platform_family_names()) + ")");
}

bool is_availability_family(std::string_view name) {
  return availability_registry().find(name) != nullptr;
}

bool is_platform_family(std::string_view name) {
  return platform_registry().find(name) != nullptr;
}

std::vector<std::string> availability_family_names() {
  return availability_registry().names();
}

std::vector<std::string> platform_family_names() { return platform_registry().names(); }

}  // namespace tcgrid::scen
