#include "scen/family.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "platform/cyclostationary.hpp"
#include "platform/replay.hpp"
#include "platform/semi_markov.hpp"

namespace tcgrid::scen {

namespace {

// ----------------------------------------------------------- availability ----

class MarkovFamily final : public AvailabilityFamily {
 public:
  explicit MarkovFamily(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<platform::AvailabilitySource> make_source(
      const platform::Platform& platform, std::uint64_t seed,
      platform::InitialStates init) const override {
    return std::make_unique<platform::MarkovAvailability>(platform, seed, init);
  }

 private:
  std::string name_;
};

class WeibullFamily final : public AvailabilityFamily {
 public:
  WeibullFamily(std::string name, WeibullFamilyParams params)
      : name_(std::move(name)), params_(params) {
    if (!(params_.shape > 0.0)) {
      throw std::invalid_argument("weibull family: shape must be > 0");
    }
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<platform::AvailabilitySource> make_source(
      const platform::Platform& platform, std::uint64_t seed,
      platform::InitialStates /*init*/) const override {
    std::vector<platform::SemiMarkovParams> per_proc;
    per_proc.reserve(static_cast<std::size_t>(platform.size()));
    for (const auto& pr : platform.procs()) {
      per_proc.push_back(platform::matched_semi_markov(pr.availability, params_.shape));
    }
    return std::make_unique<platform::SemiMarkovAvailability>(std::move(per_proc), seed);
  }

 private:
  std::string name_;
  WeibullFamilyParams params_;
};

class TraceFamily final : public AvailabilityFamily {
 public:
  TraceFamily(std::string name, TraceFamilyParams params)
      : name_(std::move(name)), params_(std::move(params)) {
    // Validate the timeline ONCE at registration (full ragged scan via the
    // replay ctor); per-trial sources skip it — see make_source.
    (void)platform::TraceReplayAvailability(params_.timeline, 0, false);
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<platform::AvailabilitySource> make_source(
      const platform::Platform& platform, std::uint64_t seed,
      platform::InitialStates /*init*/) const override {
    const auto width = static_cast<int>(params_.timeline->front().size());
    if (width != platform.size()) {
      throw std::invalid_argument("trace family '" + name_ + "': trace is " +
                                  std::to_string(width) + " processors wide, platform has " +
                                  std::to_string(platform.size()));
    }
    return std::make_unique<platform::TraceReplayAvailability>(
        params_.timeline, seed, params_.rotate, /*validated=*/true);
  }

 private:
  std::string name_;
  TraceFamilyParams params_;
};

class DayNightFamily final : public AvailabilityFamily {
 public:
  DayNightFamily(std::string name, DayNightFamilyParams params)
      : name_(std::move(name)), params_(params) {
    if (params_.period < 1 || params_.day_slots < 0 ||
        params_.day_slots > params_.period) {
      throw std::invalid_argument("daynight family: bad period/day_slots");
    }
    // Reject calm > 1 here, not in scale_departures: whether an amplifying
    // factor overflows a row depends on the platform's chains, which would
    // turn a bad parameter into a mid-sweep, scenario-dependent throw
    // instead of an up-front registration failure.
    if (params_.night_calm < 0.0 || params_.night_calm > 1.0) {
      throw std::invalid_argument("daynight family: night_calm must be in [0, 1]");
    }
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<platform::AvailabilitySource> make_source(
      const platform::Platform& platform, std::uint64_t seed,
      platform::InitialStates init) const override {
    return std::make_unique<platform::CyclostationaryAvailability>(
        platform, seed, params_.period, params_.day_slots, params_.night_calm, init);
  }

 private:
  std::string name_;
  DayNightFamilyParams params_;
};

// ---------------------------------------------------------------- platform ----

class PaperPlatformFamily final : public PlatformFamily {
 public:
  explicit PaperPlatformFamily(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] platform::Scenario make(
      const platform::ScenarioParams& params) const override {
    return platform::make_scenario(params);
  }

 private:
  std::string name_;
};

class ClusterPlatformFamily final : public PlatformFamily {
 public:
  ClusterPlatformFamily(std::string name, ClusterPlatformParams params)
      : name_(std::move(name)), params_(params) {
    if (params_.clusters < 1) {
      throw std::invalid_argument("clusters family: clusters must be >= 1");
    }
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] platform::Scenario make(
      const platform::ScenarioParams& params) const override {
    if (params.m < 1 || params.ncom < 1 || params.wmin < 1 || params.p < 1) {
      throw std::invalid_argument("clusters family: invalid parameters");
    }
    util::Rng rng(params.seed);
    const int k = std::min(params_.clusters, params.p);
    // One speed and one chain per cluster; members are contiguous blocks of
    // as-even-as-possible size (the first p % k clusters get one extra).
    std::vector<markov::TransitionMatrix> chains;
    std::vector<long> speeds;
    chains.reserve(static_cast<std::size_t>(k));
    speeds.reserve(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) {
      chains.push_back(markov::TransitionMatrix::paper_random(rng));
      speeds.push_back(rng.uniform_int(params.wmin, 10 * params.wmin));
    }
    std::vector<platform::Processor> procs;
    procs.reserve(static_cast<std::size_t>(params.p));
    int cluster = 0, filled = 0;
    for (int q = 0; q < params.p; ++q) {
      const int quota = params.p / k + (cluster < params.p % k ? 1 : 0);
      platform::Processor pr;
      pr.id = q;
      pr.availability = chains[static_cast<std::size_t>(cluster)];
      pr.speed = speeds[static_cast<std::size_t>(cluster)];
      pr.max_tasks = params.m;
      procs.push_back(pr);
      if (++filled == quota) {
        ++cluster;
        filled = 0;
      }
    }

    model::Application app;
    app.num_tasks = params.m;
    app.t_data = params.wmin;
    app.t_prog = 5 * params.wmin;
    app.iterations = params.iterations;
    app.validate();

    return platform::Scenario{platform::Platform(std::move(procs), params.ncom), app,
                              params};
  }

 private:
  std::string name_;
  ClusterPlatformParams params_;
};

}  // namespace

std::shared_ptr<const AvailabilityFamily> make_markov_family(std::string name,
                                                             MarkovFamilyParams) {
  return std::make_shared<MarkovFamily>(std::move(name));
}

std::shared_ptr<const AvailabilityFamily> make_weibull_family(
    std::string name, WeibullFamilyParams params) {
  return std::make_shared<WeibullFamily>(std::move(name), params);
}

std::shared_ptr<const AvailabilityFamily> make_trace_family(std::string name,
                                                            TraceFamilyParams params) {
  return std::make_shared<TraceFamily>(std::move(name), std::move(params));
}

std::shared_ptr<const AvailabilityFamily> make_daynight_family(
    std::string name, DayNightFamilyParams params) {
  return std::make_shared<DayNightFamily>(std::move(name), params);
}

std::shared_ptr<const PlatformFamily> make_paper_platform_family(std::string name) {
  return std::make_shared<PaperPlatformFamily>(std::move(name));
}

std::shared_ptr<const PlatformFamily> make_cluster_platform_family(
    std::string name, ClusterPlatformParams params) {
  return std::make_shared<ClusterPlatformFamily>(std::move(name), params);
}

}  // namespace tcgrid::scen
