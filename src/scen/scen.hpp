// Umbrella header for the tcgrid scenario-model subsystem.
//
//   #include "scen/scen.hpp"
//
//   // Run the paper's sweep in a Weibull world on clustered platforms:
//   tcgrid::api::ExperimentSpec spec = tcgrid::api::ExperimentSpec::reduced(5, 200'000);
//   spec.scenario_space = {.availability = "weibull", .platform = "clusters"};
//
// See DESIGN.md §7 for the family registry, the block-stepping contract and
// the §VII-B mismatch experiment.
#pragma once

#include "scen/family.hpp"    // IWYU pragma: export
#include "scen/registry.hpp"  // IWYU pragma: export
#include "scen/space.hpp"     // IWYU pragma: export
