#include "markov/chain_stats.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "markov/persistent_stats.hpp"
#include "obs/obs.hpp"

namespace tcgrid::markov {

namespace {

struct StoreMetrics {
  obs::Histogram intern_us;   ///< intern() latency (hits and misses)
  obs::Histogram grow_us;     ///< survival-table extension latency (misses only)
  obs::Counter retirements;   ///< survival arrays retired by grow-copy
};

StoreMetrics& store_metrics() {
  static StoreMetrics m = [] {
    obs::Registry& reg = obs::Registry::instance();
    return StoreMetrics{reg.histogram("tcgrid_chainstats_intern_us"),
                        reg.histogram("tcgrid_chainstats_survival_grow_us"),
                        reg.counter("tcgrid_chainstats_retired_arrays_total")};
  }();
  return m;
}

}  // namespace

// ----------------------------------------------------------- ChainSurvival ----

void ChainSurvival::reserve_for(long n) {
  // `n` is the next entry index AND the count of entries written so far in
  // this append burst (published <= n; the tail is not yet visible to
  // readers but must survive the copy).
  if (n < capacity_) return;
  const long grown = std::max<long>(4096, capacity_ * 2);
  const long cap = std::max(grown, n + 1);
  auto next = std::make_unique<double[]>(static_cast<std::size_t>(cap));
  // Entries are immutable once written: copy them, secure ownership, and
  // only then publish the new array — and publish it BEFORE the new length
  // ever is (a reader that acquires a published length therefore always
  // finds an array holding at least that many entries). Ownership first: if
  // arrays_.push_back threw after the store, unwinding would free an array
  // lock-free readers can already be dereferencing. The old array is
  // retired, not freed — readers (and pointers cached after an earlier
  // acquire) may still hold it.
  if (write_ != nullptr) {
    std::copy(write_, write_ + n, next.get());
    store_metrics().retirements.inc();
  }
  arrays_.push_back(std::move(next));
  write_ = arrays_.back().get();
  capacity_ = cap;
  flat_.store(write_, std::memory_order_release);
  if (bytes_ != nullptr) {
    bytes_->fetch_add(static_cast<std::size_t>(cap) * sizeof(double),
                      std::memory_order_relaxed);
  }
}

double ChainSurvival::grow_to(long t) {
  if (t <= 0) return 1.0;
  const std::lock_guard<std::mutex> lock(mu_);
  long n = published_.load(std::memory_order_relaxed);
  if (t < n) return write_[t];
  // Underflow cap: the survival probability is a sum of non-negative
  // doubles, so once an entry is exactly 0.0 every later entry is the
  // identical 0.0 — stop tabulating and answer 0.0 directly. Without this,
  // near-hopeless communication phases (e_comm grows exponentially in the
  // remaining slots) extend the table to millions of explicit zeros and
  // dominate whole sweeps.
  if (n > 0 && write_[n - 1] == 0.0) return 0.0;
  // Past the published/zero-cap fast paths: everything below is real append
  // work, the latency this histogram is for.
  const obs::ScopedTimer timer(store_metrics().grow_us);
  if (n == 0) {
    reserve_for(0);
    write_[0] = 1.0;  // t = 0; row_ is e_U already
    n = 1;
  }
  // Extend the table: entry k = P(not DOWN within k slots). row_ stands at
  // the last tabulated k and just keeps advancing — the same advance
  // sequence the per-estimator tables (and a from-scratch replay) would
  // run, so every stored double is bit-identical to them. Exact growth:
  // with the row cached, resuming costs nothing, so there is no reason to
  // overshoot the request.
  while (n <= t) {
    row_.advance(*chain_);
    double s = row_.survival();
    // Subnormal cut: below DBL_MIN the sequence has left meaningful
    // territory (these probabilities multiply into estimates that are
    // already ~0) and subnormal multiplies are 10-100x slower on common
    // cores — snap to the terminal 0.0 a few thousand slots early instead
    // of crawling through the denormal tail entry by entry.
    if (s < std::numeric_limits<double>::min()) s = 0.0;
    reserve_for(n);
    write_[n] = s;
    ++n;
    if (s == 0.0) break;  // all later entries are equal zeros
  }
  published_.store(n, std::memory_order_release);
  return t < n ? write_[t] : 0.0;
}

void ChainSurvival::seed_from(const double* data, long len, UrRow row) {
  assert(len > 0 && "seed_from: empty prefix has nothing to seed");
  assert(published_.load(std::memory_order_relaxed) == 0 &&
         "seed_from: table already populated");
  // The mapped array is published as the flat array directly — served at
  // the same lock-free depth as a heap array — but NEVER written through:
  // capacity_ == len means the very first append hits reserve_for, which
  // grow-copies the mapped prefix to heap and retires the mapped pointer
  // (the mapping itself stays alive in the PersistentChainStats that served
  // it, exactly like a retired heap array stays in arrays_).
  write_ = const_cast<double*>(data);
  capacity_ = len;
  row_ = row;
  flat_.store(data, std::memory_order_release);
  published_.store(len, std::memory_order_release);
}

UrRow ChainSurvival::snapshot(std::vector<double>& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const long n = published_.load(std::memory_order_relaxed);
  out.clear();
  if (n > 0) out.assign(write_, write_ + n);
  return row_;
}

void ChainSurvival::survival_at(std::span<const long> depths, std::span<double> out) {
  assert(depths.size() == out.size());
  // One acquire pair for the whole batch: every depth below the published
  // frontier is answered from this snapshot of the flat array.
  const long n = published();
  const double* table = flat();
  const bool terminal = n > 0 && table[n - 1] == 0.0;
  long deepest = -1;
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const long t = depths[i];
    if (t <= 0) {
      out[i] = 1.0;
    } else if (t < n) {
      out[i] = table[t];
    } else if (terminal) {
      out[i] = 0.0;
    } else {
      deepest = std::max(deepest, t);
    }
  }
  if (deepest < 0) return;
  // Grow once, to the deepest uncovered depth, then answer the stragglers
  // from the extended snapshot. A depth still at or past the re-acquired
  // frontier means the table hit its terminal exact zero before reaching it
  // — the same 0.0 a scalar grow_to(t) would have returned.
  grow_to(deepest);
  const long grown = published();
  table = flat();
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const long t = depths[i];
    if (t <= 0 || t < n) continue;  // covered by the first pass
    out[i] = t < grown ? table[t] : 0.0;
  }
}

// --------------------------------------------------------- ChainStatsStore ----

ChainStatsStore::ChainStatsStore(double eps) : ChainStatsStore(eps, nullptr) {}

ChainStatsStore::ChainStatsStore(double eps,
                                 std::shared_ptr<PersistentChainStats> persist)
    : eps_(eps), persist_(std::move(persist)) {
  if (eps_ <= 0.0) {
    throw std::invalid_argument("ChainStatsStore: eps must be positive");
  }
  if (persist_ != nullptr && persist_->eps() != eps_) {
    throw std::invalid_argument(
        "ChainStatsStore: persistent store eps does not match (every stored "
        "quantity depends on the truncation precision)");
  }
}

std::array<std::uint64_t, 4> ChainStatsStore::content_key(
    const UrMatrix& m) noexcept {
  return {std::bit_cast<std::uint64_t>(m.uu), std::bit_cast<std::uint64_t>(m.ur),
          std::bit_cast<std::uint64_t>(m.ru), std::bit_cast<std::uint64_t>(m.rr)};
}

ChainId ChainStatsStore::intern(const UrMatrix& m) {
  const obs::ScopedTimer timer(store_metrics().intern_us);
  const auto key = content_key(m);
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = by_content_.find(key); it != by_content_.end()) {
    intern_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Construct the entry BEFORE the key becomes visible: if any allocation
  // here throws, the store is unchanged — a map node pointing at a chain id
  // that was never created would alias a later, different chain.
  auto entry = std::make_unique<ChainEntry>();
  entry->matrix = m;
  entry->survival.chain_ = &entry->matrix;  // stable: entry lives behind unique_ptr
  entry->survival.bytes_ = &bytes_;
  if (persist_ != nullptr) {
    // Disk-backed seed, before the entry becomes visible (no concurrent
    // reader yet): a persisted survival prefix is served straight from the
    // generation mapping — zero heap bytes — with the stored UrRow frontier
    // making any later growth resume the exact advance sequence; a persisted
    // quad satisfies stats_once so chain_stats() never recomputes it. Both
    // are bit-identical to compute-and-intern by the §10 purity argument.
    PersistentChainStats::ChainHit hit;
    if (persist_->find_chain(key, hit)) {
      if (hit.survival_len > 0) {
        entry->survival.seed_from(hit.survival, hit.survival_len, hit.row);
      }
      if (hit.has_stats) {
        std::call_once(entry->stats_once, [&] { entry->stats = hit.stats; });
        entry->stats_ready.store(true, std::memory_order_release);
      }
    }
  }
  const auto id = static_cast<ChainId>(chains_.size());
  chains_.push_back(std::move(entry));
  try {
    by_content_.emplace(key, id);
  } catch (...) {
    chains_.pop_back();  // noexcept: the rollback cannot itself fail
    throw;
  }
  bytes_.fetch_add(sizeof(ChainEntry) + sizeof(key) + sizeof(ChainId),
                   std::memory_order_relaxed);
  return id;
}

UrMatrix ChainStatsStore::chain(ChainId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return chains_.at(id)->matrix;
}

CoupledStats ChainStatsStore::chain_stats(ChainId id) const {
  ChainEntry* entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entry = chains_.at(id).get();
  }
  // Compute outside the store mutex: a slow renewal recursion for one chain
  // must not block lookups of other chains. call_once publishes the quad.
  std::call_once(entry->stats_once, [&] {
    const UrMatrix procs[] = {entry->matrix};
    entry->stats = coupled_stats(procs, eps_);
  });
  entry->stats_ready.store(true, std::memory_order_release);
  return entry->stats;
}

CoupledStats ChainStatsStore::set_stats(std::span<const ChainId> ids) const {
  assert(std::is_sorted(ids.begin(), ids.end()) &&
         "ChainStatsStore::set_stats: ids must be the sorted multiset spelling");
  SetEntry* entry;
  {
    std::vector<ChainId> key(ids.begin(), ids.end());
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = sets_.find(key); it != sets_.end()) {
      set_hits_.fetch_add(1, std::memory_order_relaxed);
      entry = it->second.get();
    } else {
      // Construct the entry BEFORE the key becomes visible: a failed
      // allocation must not leave a {key, nullptr} node that a later call
      // would dereference as a hit (same discipline as intern()).
      auto node = std::make_unique<SetEntry>();
      entry = node.get();
      sets_.emplace(std::move(key), std::move(node));
      bytes_.fetch_add(sizeof(SetEntry) + ids.size() * sizeof(ChainId) + 64,
                       std::memory_order_relaxed);
      set_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::call_once(entry->once, [&] {
    // Gather the multiset's matrices (brief re-lock: the chain directory may
    // grow concurrently) and evaluate the series in CONTENT order: sorted by
    // the matrices' bit patterns, a total order independent of intern order,
    // call order, thread timing and store population. This makes the stored
    // quad a pure function of the multiset — the bit-identity argument of
    // DESIGN.md §10 rests on it.
    std::vector<UrMatrix> procs;
    procs.reserve(ids.size());
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (ChainId id : ids) procs.push_back(chains_.at(id)->matrix);
    }
    std::sort(procs.begin(), procs.end(), [](const UrMatrix& a, const UrMatrix& b) {
      return content_key(a) < content_key(b);
    });
    if (persist_ != nullptr) {
      // The persistent key is the flattened content-ordered key sequence —
      // the cross-process spelling of this multiset (ids are store-local).
      // A hit is the exact quad a computation would produce (purity), so
      // the expensive coupled series is skipped entirely.
      std::vector<std::uint64_t> key;
      key.reserve(procs.size() * 4);
      for (const UrMatrix& m : procs) {
        const auto k = content_key(m);
        key.insert(key.end(), k.begin(), k.end());
      }
      if (persist_->find_set(key, entry->stats)) return;
    }
    entry->stats = coupled_stats(procs, eps_);
  });
  entry->ready.store(true, std::memory_order_release);
  return entry->stats;
}

ChainSurvival& ChainStatsStore::survival(ChainId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return chains_.at(id)->survival;
}

void ChainStatsStore::export_entries(std::vector<ExportedChain>& chains,
                                     std::vector<ExportedSet>& sets) const {
  chains.clear();
  sets.clear();
  // Directory walk under the store mutex only — entry pointers are stable
  // (unique_ptr nodes), so the per-entry copies happen outside it: survival
  // prefixes under their per-chain mutex, quads behind the ready flags'
  // acquire. Entries still computing are skipped; a later flush gets them.
  std::vector<ChainEntry*> entries;
  std::vector<std::pair<std::vector<std::uint64_t>, SetEntry*>> set_nodes;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(chains_.size());
    for (const auto& entry : chains_) entries.push_back(entry.get());
    for (const auto& [ids, node] : sets_) {
      if (!node->ready.load(std::memory_order_acquire)) continue;
      // Cross-process spelling: content keys in content order — exactly the
      // order set_stats evaluates in (the arrays sort the same way their
      // matrices do, the comparison IS content_key).
      std::vector<std::array<std::uint64_t, 4>> keys;
      keys.reserve(ids.size());
      for (ChainId id : ids) keys.push_back(content_key(chains_.at(id)->matrix));
      std::sort(keys.begin(), keys.end());
      std::vector<std::uint64_t> flat;
      flat.reserve(keys.size() * 4);
      for (const auto& k : keys) flat.insert(flat.end(), k.begin(), k.end());
      set_nodes.emplace_back(std::move(flat), node.get());
    }
  }
  for (ChainEntry* entry : entries) {
    ExportedChain out;
    out.key = content_key(entry->matrix);
    if (entry->stats_ready.load(std::memory_order_acquire)) {
      out.has_stats = true;
      out.stats = entry->stats;
    }
    out.row = entry->survival.snapshot(out.survival);
    if (!out.has_stats && out.survival.empty()) continue;  // nothing derived yet
    chains.push_back(std::move(out));
  }
  for (auto& [key, node] : set_nodes) {
    sets.push_back(ExportedSet{std::move(key), node->stats});
  }
}

ChainStatsStore::Counters ChainStatsStore::counters() const {
  Counters out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.chains = chains_.size();
    out.set_entries = sets_.size();
    for (const auto& entry : chains_) {
      out.survival_entries +=
          static_cast<std::size_t>(entry->survival.published());
    }
  }
  out.intern_hits = intern_hits_.load(std::memory_order_relaxed);
  out.set_hits = set_hits_.load(std::memory_order_relaxed);
  out.set_misses = set_misses_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace tcgrid::markov
