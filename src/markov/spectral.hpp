// The 2x2 sub-chain over {UP, RECLAIMED} and its spectral decay bound.
//
// Restricting the 3-state chain to the non-DOWN states gives a sub-stochastic
// matrix M_q; (M_q^t)[u][u] is exactly the paper's P^{(q)}_{u -t-> u}: the
// probability that a processor UP at time 0 is UP at time t without having
// been DOWN in between. The dominant eigenvalue lambda1(M_q) < 1 (when the
// processor can fail) yields the geometric tail bound used to truncate the
// series of Theorem 5.1 at a guaranteed precision.
#pragma once

#include <cstddef>

#include "markov/transition_matrix.hpp"

namespace tcgrid::markov {

/// Sub-stochastic 2x2 matrix over (Up, Reclaimed).
struct UrMatrix {
  double uu = 1.0;  ///< P(UP -> UP)
  double ur = 0.0;  ///< P(UP -> RECLAIMED)
  double ru = 0.0;  ///< P(RECLAIMED -> UP)
  double rr = 0.0;  ///< P(RECLAIMED -> RECLAIMED)

  /// Dominant eigenvalue. For a nonnegative 2x2 matrix the discriminant
  /// (uu-rr)^2 + 4*ur*ru is nonnegative, so both eigenvalues are real.
  [[nodiscard]] double lambda1() const noexcept;

  /// True when no mass leaks to DOWN (both rows sum to 1).
  [[nodiscard]] bool failure_free() const noexcept {
    return uu + ur >= 1.0 - 1e-12 && ru + rr >= 1.0 - 1e-12;
  }
};

/// Extract the UR sub-matrix of a full 3-state transition matrix.
[[nodiscard]] UrMatrix ur_submatrix(const TransitionMatrix& m) noexcept;

/// Row vector e_state^T * M^t, advanced one step at a time.
/// Tracks, for a processor starting UP, the probability of being UP (`u`)
/// or RECLAIMED (`r`) at the current step without ever having been DOWN.
struct UrRow {
  double u = 1.0;
  double r = 0.0;

  void advance(const UrMatrix& m) noexcept {
    const double nu = u * m.uu + r * m.ru;
    const double nr = u * m.ur + r * m.rr;
    u = nu;
    r = nr;
  }

  /// P(not DOWN so far) = u + r.
  [[nodiscard]] double survival() const noexcept { return u + r; }
};

/// P^{(q)}_{u -t-> u} = (M^t)[u][u].
[[nodiscard]] double p_up_to_up(const UrMatrix& m, std::size_t t) noexcept;

/// Probability that a processor starting UP does not visit DOWN during the
/// next t slots (in any non-DOWN end state). This is the paper's P_ND(t).
[[nodiscard]] double p_no_down(const UrMatrix& m, std::size_t t) noexcept;

}  // namespace tcgrid::markov
