#include "markov/spectral.hpp"

#include <cmath>

namespace tcgrid::markov {

double UrMatrix::lambda1() const noexcept {
  const double tr = uu + rr;
  const double disc = (uu - rr) * (uu - rr) + 4.0 * ur * ru;
  return 0.5 * (tr + std::sqrt(std::max(0.0, disc)));
}

UrMatrix ur_submatrix(const TransitionMatrix& m) noexcept {
  UrMatrix out;
  out.uu = m.prob(State::Up, State::Up);
  out.ur = m.prob(State::Up, State::Reclaimed);
  out.ru = m.prob(State::Reclaimed, State::Up);
  out.rr = m.prob(State::Reclaimed, State::Reclaimed);
  return out;
}

double p_up_to_up(const UrMatrix& m, std::size_t t) noexcept {
  UrRow row;
  for (std::size_t i = 0; i < t; ++i) row.advance(m);
  return row.u;
}

double p_no_down(const UrMatrix& m, std::size_t t) noexcept {
  UrRow row;
  for (std::size_t i = 0; i < t; ++i) row.advance(m);
  return row.survival();
}

}  // namespace tcgrid::markov
