#include "markov/chain.hpp"

namespace tcgrid::markov {

State step(const TransitionMatrix& m, State from, util::Rng& rng) {
  const double u = rng.uniform01();
  const double pu = m.prob(from, State::Up);
  if (u < pu) return State::Up;
  if (u < pu + m.prob(from, State::Reclaimed)) return State::Reclaimed;
  return State::Down;
}

std::vector<State> trajectory(const TransitionMatrix& m, State initial,
                              std::size_t length, util::Rng& rng) {
  std::vector<State> out;
  out.reserve(length);
  if (length == 0) return out;
  out.push_back(initial);
  for (std::size_t i = 1; i < length; ++i) {
    out.push_back(step(m, out.back(), rng));
  }
  return out;
}

double mc_up_to_up(const TransitionMatrix& m, std::size_t t, std::size_t samples,
                   util::Rng& rng) {
  if (t == 0) return 1.0;
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    State cur = State::Up;
    bool died = false;
    for (std::size_t k = 0; k < t; ++k) {
      cur = step(m, cur, rng);
      if (cur == State::Down) {
        died = true;
        break;
      }
    }
    if (!died && cur == State::Up) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace tcgrid::markov
