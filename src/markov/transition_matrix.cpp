#include "markov/transition_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace tcgrid::markov {

TransitionMatrix::TransitionMatrix()
    : p_{{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}}} {
  compute_cuts();
}

TransitionMatrix::TransitionMatrix(const std::array<std::array<double, 3>, 3>& p)
    : p_(p) {
  for (const auto& row : p_) {
    double sum = 0.0;
    for (double v : row) {
      if (v < -1e-12 || v > 1.0 + 1e-12) {
        throw std::invalid_argument("TransitionMatrix: entry outside [0,1]");
      }
      sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("TransitionMatrix: row does not sum to 1");
    }
  }
  compute_cuts();
}

void TransitionMatrix::compute_cuts() noexcept {
  for (std::size_t from = 0; from < 3; ++from) {
    const auto f = static_cast<State>(from);
    const double pu = prob(f, State::Up);
    // The second cut uses the same one-time sum markov::step computes per
    // call, so the double it searches against is the identical IEEE value.
    cuts_[from][0] = util::uniform01_cut(pu);
    cuts_[from][1] = util::uniform01_cut(pu + prob(f, State::Reclaimed));
  }
}

TransitionMatrix TransitionMatrix::paper_random(util::Rng& rng) {
  const double uu = rng.uniform(0.90, 0.99);
  const double rr = rng.uniform(0.90, 0.99);
  const double dd = rng.uniform(0.90, 0.99);
  return from_self_loops(uu, rr, dd);
}

TransitionMatrix TransitionMatrix::from_self_loops(double uu, double rr, double dd) {
  auto row = [](double self, std::size_t pos) {
    const double other = 0.5 * (1.0 - self);
    std::array<double, 3> r{other, other, other};
    r[pos] = self;
    return r;
  };
  return TransitionMatrix({row(uu, 0), row(rr, 1), row(dd, 2)});
}

std::array<double, 3> TransitionMatrix::stationary() const {
  // Solve pi (P - I) = 0 with the normalization sum(pi) = 1, i.e. the linear
  // system A^T x = b where we replace the last equation by the normalizer.
  // 3x3 Gaussian elimination with partial pivoting is plenty.
  double a[3][4] = {};
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      a[j][i] = p_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
                (i == j ? 1.0 : 0.0);
    }
    a[j][3] = 0.0;
  }
  for (int i = 0; i < 3; ++i) a[2][i] = 1.0;
  a[2][3] = 1.0;

  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    if (std::abs(a[col][col]) < 1e-14) {
      throw std::runtime_error("TransitionMatrix::stationary: singular system");
    }
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::array<double, 3> pi{};
  for (int i = 0; i < 3; ++i) pi[static_cast<std::size_t>(i)] = a[i][3] / a[i][i];
  return pi;
}

}  // namespace tcgrid::markov
