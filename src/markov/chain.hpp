// Sampling of Markov availability trajectories.
#pragma once

#include <vector>

#include "markov/state.hpp"
#include "markov/transition_matrix.hpp"
#include "util/rng.hpp"

namespace tcgrid::markov {

/// Sample the successor state of `from` under `m`, consuming exactly one
/// uniform draw from `rng`. Consuming a fixed number of draws per step keeps
/// trajectory realizations identical across consumers that share a seed.
[[nodiscard]] State step(const TransitionMatrix& m, State from, util::Rng& rng);

/// Sample a trajectory of `length` states starting from (and including)
/// `initial` at index 0.
[[nodiscard]] std::vector<State> trajectory(const TransitionMatrix& m, State initial,
                                            std::size_t length, util::Rng& rng);

/// Empirical probability that a processor starting UP is UP again at time t
/// without visiting DOWN in between — Monte-Carlo counterpart of the
/// analytical P^{(q)}_{u -t-> u} used to validate the series code in tests.
[[nodiscard]] double mc_up_to_up(const TransitionMatrix& m, std::size_t t,
                                 std::size_t samples, util::Rng& rng);

}  // namespace tcgrid::markov
