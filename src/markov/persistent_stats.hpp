// PersistentChainStats: the disk-backed generation format behind the
// content-addressed chain-statistics cache (DESIGN.md §14).
//
// Every quantity ChainStatsStore derives — per-chain CoupledStats quads,
// set-level quads, survival tables — is a pure function of the chains' BIT
// content (plus eps), so the in-memory store's content keys are valid
// ACROSS processes: a chain computed by any process ever is the same chain,
// bit for bit, for every other process. This class makes that literal: a
// store directory holds append-only GENERATION files, each an immutable,
// checksummed snapshot of newly computed entries, mapped read-only and
// served in place:
//
//   * chain entries are keyed by the 4x64-bit pattern of (uu, ur, ru, rr) —
//     the exact key ChainStatsStore::intern uses — and carry the stats quad,
//     a flat survival prefix (served directly from the mapping: the same
//     lock-free pointer+index read path as the in-memory flat arrays, after
//     a one-time seed), and the UrRow frontier standing at the last entry,
//     so growth past the mapped prefix resumes the exact advance sequence;
//   * set entries are keyed by the sorted multiset of chain content keys
//     (ids are store-local and meaningless across processes);
//   * a generation publishes atomically — write-temp, fsync, rename, fsync
//     dir (serve/checkpoint.cpp's discipline) — and carries a suffix
//     footer (magic + counts + file size + checksum), so a torn file never
//     loads: any validation failure skips the whole generation, counted,
//     never crashing, and the next flush re-persists whatever it held;
//   * generations are never unmapped while the object lives — the file
//     analogue of the in-memory store's retired survival arrays: refresh()
//     only ever ADDS mappings, so pointers served to seeded tables stay
//     valid for the object's (and therefore the owning store's) lifetime.
//
// Concurrency: lookups and refresh take one mutex (they run only on store
// misses — cold construction — never on the estimator hot path); survival
// reads through seeded tables are lock-free off the mapping. flush_from is
// additionally serialized by a flush mutex and safe concurrently with
// lookups and with the exporting store's ongoing mutation. Cross-process:
// any number of readers and writers may share one directory — writers
// publish distinct file names, duplicated entries across generations are
// identical by purity and deduplicated at load (longest survival wins).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "markov/chain_stats.hpp"
#include "markov/series.hpp"
#include "markov/spectral.hpp"
#include "util/mmap_file.hpp"

namespace tcgrid::markov {

class PersistentChainStats {
 public:
  /// Opens (creating if needed) the store directory and maps every valid
  /// generation in it. `eps`: the truncation precision this store's entries
  /// were computed at — generations recorded under a different eps are
  /// skipped at load (they answer different questions), and flush stamps
  /// the value into every generation it writes. Throws std::runtime_error
  /// when the directory cannot be created or opened; torn or foreign files
  /// inside it are skipped, never fatal.
  PersistentChainStats(std::string dir, double eps);

  PersistentChainStats(const PersistentChainStats&) = delete;
  PersistentChainStats& operator=(const PersistentChainStats&) = delete;

  /// One chain's persisted state. `survival` points into a read-only
  /// generation mapping owned by this object — valid for its lifetime.
  struct ChainHit {
    bool has_stats = false;
    CoupledStats stats;
    const double* survival = nullptr;
    long survival_len = 0;
    UrRow row;  ///< stands at entry survival_len-1
  };

  /// Lookup by chain content key (ChainStatsStore's intern key). Returns
  /// false on miss. Counts a hit/miss either way.
  bool find_chain(const std::array<std::uint64_t, 4>& key, ChainHit& out) const;

  /// Lookup by flattened sorted multiset key (4 words per chain, chains in
  /// content order — ChainStatsStore::ExportedSet::key's layout). On hit,
  /// writes the quad into `out` and returns true.
  bool find_set(std::span<const std::uint64_t> key, CoupledStats& out) const;

  /// Map any generation published (by this or another process) since the
  /// constructor or the last refresh/flush. Returns the number of newly
  /// mapped generations. Existing mappings are untouched.
  std::size_t refresh();

  /// Persist every exported entry of `store` not already on disk as one new
  /// generation; a flush with nothing new writes no file. Returns the
  /// number of entries written. The new generation is also mapped and
  /// indexed here (so repeated flushes are incremental) and becomes visible
  /// to other processes' refresh(). Thread-safe; serialized internally.
  std::size_t flush_from(const ChainStatsStore& store);

  struct Counters {
    std::size_t generations = 0;    ///< mapped generation files
    std::size_t mapped_bytes = 0;   ///< bytes of read-only mappings
    std::size_t chains = 0;         ///< distinct chain keys indexed
    std::size_t sets = 0;           ///< distinct multiset keys indexed
    std::size_t survival_doubles = 0;  ///< survival entries served from disk
    std::size_t chain_hits = 0;
    std::size_t chain_misses = 0;
    std::size_t set_hits = 0;
    std::size_t set_misses = 0;
    std::size_t skipped_generations = 0;  ///< torn/foreign/eps-mismatched
    std::size_t flushes = 0;           ///< generations written by this object
    std::size_t flushed_entries = 0;   ///< entries across those generations
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

  /// Fault injection for the crash-safety tests: the next flush misbehaves
  /// as specified, then the fault resets to None. TornTemp: stop after
  /// writing `keep_bytes` of the temp file, never publish (a crash before
  /// rename). PublishTruncated: publish a generation truncated to
  /// `keep_bytes` (a torn write that made it to the final name — the state
  /// the footer checksum exists to catch); negative counts back from the
  /// full image size. SkipPublish: write the full temp
  /// file but crash before rename.
  struct FlushFault {
    enum class Kind { None, TornTemp, PublishTruncated, SkipPublish };
    Kind kind = Kind::None;
    long keep_bytes = 0;
  };
  void set_flush_fault_for_test(FlushFault fault);

 private:
  struct SetVal {
    CoupledStats stats;
  };

  /// Map + validate + index one generation file (caller holds mu_).
  /// Invalid files count as skipped; `loaded_` remembers every name either
  /// way so a torn file is not re-validated on every refresh.
  void load_generation(const std::string& name);
  /// Scan the directory for unseen generation files (caller holds mu_).
  std::size_t load_new_generations();
  void update_gauges() const;  ///< caller holds mu_

  std::string dir_;
  double eps_;

  mutable std::mutex mu_;  ///< index, generations, counters
  std::vector<util::MappedFile> generations_;  ///< never shrinks (see header)
  std::map<std::string, bool> loaded_;  ///< file name -> mapped ok
  std::map<std::array<std::uint64_t, 4>, ChainHit> chains_;
  std::map<std::vector<std::uint64_t>, SetVal> sets_;

  std::mutex flush_mu_;  ///< serializes flush_from in-process
  std::uint64_t flush_seq_ = 0;
  FlushFault fault_;  ///< under flush_mu_

  mutable std::size_t chain_hits_ = 0;
  mutable std::size_t chain_misses_ = 0;
  mutable std::size_t set_hits_ = 0;
  mutable std::size_t set_misses_ = 0;
  std::size_t skipped_ = 0;
  std::size_t mapped_bytes_ = 0;
  std::size_t survival_doubles_ = 0;
  std::size_t flushes_ = 0;
  std::size_t flushed_entries_ = 0;
};

}  // namespace tcgrid::markov
