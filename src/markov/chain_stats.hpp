// ChainStatsStore: the canonical, shareable home of every §V series result.
//
// The estimator quantities — survival series e_U^T M^k, per-chain and
// set-level CoupledStats — are pure functions of the availability chains'
// UR sub-matrices. Before this store existed, every sched::Estimator
// recomputed and re-tabulated them per scenario cell, and within a cell kept
// one survival table PER PROCESSOR even when several processors share one
// chain (clustered platforms; any homogeneous world). The store interns UR
// sub-matrices by content — the canonical ChainId — and computes each
// derived quantity exactly once per distinct chain (or multiset of chains)
// for everyone: every processor, heuristic, trial, scenario cell and worker
// thread of a session (DESIGN.md §10).
//
// Keying discipline:
//   * chains are interned by BIT content of (uu, ur, ru, rr): two matrices
//     are the same chain iff their doubles are bit-identical;
//   * set-level stats are keyed by the sorted MULTISET of chain ids, not by
//     a processor bitmask — on a homogeneous platform the p-choose-k
//     distinct worker sets of size k collapse to ONE entry per k, and the
//     entry is shared by every estimator view over the store;
//   * the series product for a multiset is evaluated in CONTENT order (sorted
//     by the matrices' bit patterns), never in call or intern order, so the
//     stored doubles are a pure function of the multiset — independent of
//     which caller, thread, or store population got there first. This is the
//     load-bearing half of the shared-vs-private bit-identity guarantee
//     (Options::shared_chain_stats; DESIGN.md §10).
//
// Concurrency model (the first cross-thread cache in the codebase):
//   * intern / entry lookup take one store mutex, briefly (no series math
//     under it);
//   * per-chain and per-set CoupledStats are computed under a per-entry
//     std::call_once, so an expensive renewal recursion never blocks other
//     keys;
//   * survival tables are append-only: published-prefix reads are lock-free
//     (atomic published length + an atomically published flat array whose
//     predecessors are retired, never freed, on growth), appends serialize
//     on a per-chain mutex. Stored doubles are produced by
//     the exact UrRow advance sequence the per-estimator tables used, so
//     they are bit-identical to the tables they replace;
//   * CoupledStats values are returned BY VALUE (a 4-scalar quad): callers
//     own their copy — and its lazily grown, non-thread-safe w-memo —
//     privately. The store's own instances never grow a w-memo.
//
// Observability: hit/miss counters and byte accounting (in the spirit of
// Options::realization_budget) via counters().
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "markov/series.hpp"
#include "markov/spectral.hpp"

namespace tcgrid::markov {

class PersistentChainStats;

/// Canonical identity of an interned UR sub-matrix within one store.
/// Ids are dense (0..chain_count-1) and stable for the store's lifetime.
using ChainId = std::uint32_t;

/// One chain's shared survival table: entry t is P(not DOWN within t slots),
/// the exact double the per-estimator tables tabulated (same UrRow advance
/// sequence, same subnormal cut, same exact-zero cap).
///
/// Storage is one flat array read lock-free at vector depth (pointer +
/// index); appends serialize on the per-chain mutex and publish the new
/// length with release/acquire. When the array fills, growth allocates a
/// larger one, copies the (immutable) published prefix, publishes the new
/// pointer — and RETIRES the old array instead of freeing it, so a
/// concurrent lock-free reader (or a pointer another thread cached after an
/// earlier published() acquire) keeps dereferencing valid memory for the
/// store's lifetime. Retired capacity is a geometric series below one final
/// capacity per chain; counters().bytes accounts for all of it. Entries,
/// once published, never change; the table never shrinks.
class ChainSurvival {
 public:
  ChainSurvival() = default;
  ChainSurvival(const ChainSurvival&) = delete;
  ChainSurvival& operator=(const ChainSurvival&) = delete;

  /// Number of tabulated entries visible to this thread (acquire).
  [[nodiscard]] long published() const noexcept {
    return published_.load(std::memory_order_acquire);
  }

  /// The table array. Read it only after published(); entries t < that
  /// published() are valid in whatever array this returns (arrays only
  /// ever grow-copy). The acquire is load-bearing: this load may observe an
  /// array NEWER than the one published() synchronized with, and it is the
  /// pairing with reserve_for()'s release store that orders that array's
  /// grow-copy before our reads of it.
  [[nodiscard]] const double* flat() const noexcept {
    return flat_.load(std::memory_order_acquire);
  }

  /// Entry t; only valid for t < published().
  [[nodiscard]] double at(long t) const noexcept { return flat()[t]; }

  /// P(not DOWN within t slots) for t at or past the published frontier:
  /// extends the table under the per-chain mutex (or answers 0.0 directly
  /// once the table has reached its terminal exact zero).
  double grow_to(long t);

  /// Batched probe: out[i] = P(not DOWN within depths[i] slots) for every i,
  /// bit-identical to per-depth at()/grow_to() calls. The published length
  /// and flat array are acquired ONCE for the whole batch (instead of once
  /// per depth), and the table grows at most once, to the deepest uncovered
  /// depth. Depths <= 0 answer 1.0. depths and out must have equal size.
  void survival_at(std::span<const long> depths, std::span<double> out);

 private:
  friend class ChainStatsStore;

  /// Make room for entry `n` (under mu_): grow-copy when full.
  void reserve_for(long n);

  /// Seed the table from a persistent generation's mapped flat array
  /// (markov::PersistentChainStats): publishes `data`/`len` directly — zero
  /// copies, zero heap — with `row` standing at entry len-1, so the first
  /// grow_to past the mapped frontier resumes the exact advance sequence a
  /// from-scratch tabulation would have run (grow-copies the mapped prefix
  /// to heap first, retiring the mapped pointer exactly like a full array).
  /// Must be called before the owning store publishes the entry (no
  /// concurrent readers yet); the mapping must outlive the store.
  void seed_from(const double* data, long len, UrRow row);

  /// Copy the published prefix (under mu_) into `out` and return the row
  /// standing at entry published-1 — the persistable frontier state.
  UrRow snapshot(std::vector<double>& out);

  std::atomic<const double*> flat_{nullptr};
  std::atomic<long> published_{0};
  std::mutex mu_;   ///< serializes appends only
  long capacity_ = 0;
  double* write_ = nullptr;  ///< the current array, mutably (== flat_)
  /// Every array ever allocated, newest last — retired ones stay alive for
  /// lock-free readers (see class comment).
  std::vector<std::unique_ptr<double[]>> arrays_;
  UrRow row_;                         ///< stands at entry published-1 once seeded
  const UrMatrix* chain_ = nullptr;   ///< set by the owning store
  std::atomic<std::size_t>* bytes_ = nullptr;  ///< store-level byte accounting
};

/// The session-scoped concurrent store. Thread-safe throughout; one instance
/// is shared by every estimator view of an api::Session run (or owned
/// privately per estimator when sharing is ablated — same values either way).
class ChainStatsStore {
 public:
  /// eps: truncation precision of the Theorem 5.1 series; fixed per store
  /// (every derived quantity depends on it, so stores cannot be shared
  /// across precisions — sched::Estimator enforces the match).
  explicit ChainStatsStore(double eps);

  /// Layered over a persistent disk-backed cache (DESIGN.md §14): intern
  /// misses and stats misses first consult `persist` (whose eps must match)
  /// and fall back to compute-and-intern; survival tables found on disk are
  /// served straight from the read-only mapping (zero copy, same lock-free
  /// read path). The store keeps `persist` alive — mapped generations must
  /// outlive every seeded table. nullptr degrades to the plain constructor.
  ChainStatsStore(double eps, std::shared_ptr<PersistentChainStats> persist);

  ChainStatsStore(const ChainStatsStore&) = delete;
  ChainStatsStore& operator=(const ChainStatsStore&) = delete;

  /// Intern a UR sub-matrix by bit content; returns its canonical id.
  ChainId intern(const UrMatrix& m);

  /// The interned matrix (by value; the store's copy is internal).
  [[nodiscard]] UrMatrix chain(ChainId id) const;

  /// coupled_stats({chain}, eps): computed once per chain, ever. Returned by
  /// value — the caller's copy owns a private (empty) w-memo.
  [[nodiscard]] CoupledStats chain_stats(ChainId id) const;

  /// Set-level coupled statistics for a MULTISET of chains. `ids` must be
  /// sorted ascending (the canonical multiset spelling). Computed once per
  /// multiset, in content order (see file header), and returned by value.
  [[nodiscard]] CoupledStats set_stats(std::span<const ChainId> ids) const;

  /// The chain's shared survival table. The reference is stable for the
  /// store's lifetime; estimators cache it per processor for the
  /// p_no_down fast path.
  [[nodiscard]] ChainSurvival& survival(ChainId id) const;

  [[nodiscard]] double eps() const noexcept { return eps_; }

  /// Aggregate observability (all monotone over a store's lifetime).
  struct Counters {
    std::size_t chains = 0;        ///< distinct interned chains
    std::size_t intern_hits = 0;   ///< intern() calls answered by dedup
    std::size_t set_entries = 0;   ///< distinct multiset entries
    std::size_t set_hits = 0;      ///< set_stats() calls answered by an entry
    std::size_t set_misses = 0;    ///< set_stats() calls that created one
    std::size_t survival_entries = 0;  ///< published survival doubles, all chains
    std::size_t bytes = 0;  ///< resident bytes (entries + all survival arrays)
  };
  [[nodiscard]] Counters counters() const;

  /// The persistent backing cache, or nullptr (plain in-memory store).
  [[nodiscard]] const std::shared_ptr<PersistentChainStats>& persist()
      const noexcept {
    return persist_;
  }

  /// A consistent copy of one chain's persistable state, keyed by content
  /// (ids are store-local; content keys are the cross-process identity).
  struct ExportedChain {
    std::array<std::uint64_t, 4> key{};
    bool has_stats = false;   ///< quad computed (stats valid)
    CoupledStats stats;
    std::vector<double> survival;  ///< published prefix
    UrRow row;                     ///< stands at entry survival.size()-1
  };
  /// One multiset entry, keyed by its chains' content keys sorted in content
  /// order (4 words per chain) — the same order set_stats evaluates in.
  struct ExportedSet {
    std::vector<std::uint64_t> key;
    CoupledStats stats;
  };
  /// Snapshot every entry whose derived quantities are ready (computed
  /// stats, any published survival prefix). Safe concurrently with all
  /// other store operations: the directory is walked under the store mutex,
  /// each survival prefix is copied under its per-chain mutex, and
  /// half-computed entries are simply skipped (the next flush gets them).
  void export_entries(std::vector<ExportedChain>& chains,
                      std::vector<ExportedSet>& sets) const;

 private:
  struct ChainEntry {
    UrMatrix matrix;
    mutable std::once_flag stats_once;
    /// Set (release) after stats_once ran: the exporter's queryable mirror
    /// of the unqueryable once_flag. Readers pair it with an acquire load.
    mutable std::atomic<bool> stats_ready{false};
    CoupledStats stats;            ///< quad only; w-memo never grown here
    ChainSurvival survival;
  };
  struct SetEntry {
    mutable std::once_flag once;
    mutable std::atomic<bool> ready{false};  ///< as ChainEntry::stats_ready
    CoupledStats stats;            ///< quad only; w-memo never grown here
  };

  /// Bit pattern of a matrix: the interning key and the content-order key.
  [[nodiscard]] static std::array<std::uint64_t, 4> content_key(
      const UrMatrix& m) noexcept;

  double eps_;

  /// Disk-backed second level (nullptr = none). Consulted only on misses —
  /// intern of a new chain, first stats/set_stats of an entry — so the warm
  /// paths stay exactly as fast as the plain in-memory store.
  std::shared_ptr<PersistentChainStats> persist_;

  mutable std::mutex mu_;  ///< guards the maps and chain directory only
  std::vector<std::unique_ptr<ChainEntry>> chains_;
  std::map<std::array<std::uint64_t, 4>, ChainId> by_content_;
  mutable std::map<std::vector<ChainId>, std::unique_ptr<SetEntry>> sets_;

  mutable std::atomic<std::size_t> intern_hits_{0};
  mutable std::atomic<std::size_t> set_hits_{0};
  mutable std::atomic<std::size_t> set_misses_{0};
  mutable std::atomic<std::size_t> bytes_{0};
};

}  // namespace tcgrid::markov
