// The paper's 3-state processor availability model (§III-B).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tcgrid::markov {

/// Availability state of one processor during one time slot.
///
/// UP         — available, can communicate and compute.
/// RECLAIMED  — preempted by its owner: keeps program/data and partial
///              transfers, but everything it participates in is suspended.
/// DOWN       — crashed: loses the program, all task data, any partial
///              transfer, and aborts the iteration it was enrolled in.
enum class State : std::uint8_t { Up = 0, Reclaimed = 1, Down = 2 };

inline constexpr std::size_t kNumStates = 3;
inline constexpr std::array<State, kNumStates> kAllStates = {
    State::Up, State::Reclaimed, State::Down};

[[nodiscard]] constexpr std::string_view to_string(State s) noexcept {
  switch (s) {
    case State::Up: return "UP";
    case State::Reclaimed: return "RECLAIMED";
    case State::Down: return "DOWN";
  }
  return "?";
}

/// One-character code used by trace files and the ASCII Gantt renderer.
[[nodiscard]] constexpr char code(State s) noexcept {
  switch (s) {
    case State::Up: return 'u';
    case State::Reclaimed: return 'r';
    case State::Down: return 'd';
  }
  return '?';
}

/// True for the three characters produced by code(). Callers validate with
/// this before using state_from_code().
[[nodiscard]] constexpr bool is_state_code(char c) noexcept {
  return c == 'u' || c == 'r' || c == 'd';
}

[[nodiscard]] constexpr State state_from_code(char c) noexcept {
  switch (c) {
    case 'r': return State::Reclaimed;
    case 'd': return State::Down;
    default: return State::Up;
  }
}

}  // namespace tcgrid::markov
