// Row-stochastic 3x3 transition matrix over {UP, RECLAIMED, DOWN}.
//
// Per the paper (§V): "The availability of processor Pq is described by a
// 3-state recurrent aperiodic Markov chain, defined by 9 probabilities
// P(q)_{i,j}".  The paper's experimental instantiation (§VII-A) picks the
// diagonal self-loop probabilities uniformly in [0.90, 0.99] and splits the
// remainder evenly between the two other states; `paper_random` implements
// exactly that.
#pragma once

#include <array>

#include "markov/state.hpp"
#include "util/rng.hpp"

namespace tcgrid::markov {

class TransitionMatrix {
 public:
  /// Identity-like default: processor stays UP forever.
  TransitionMatrix();

  /// Construct from a full 3x3 row-major array. Throws std::invalid_argument
  /// unless every row is a probability distribution (within 1e-9).
  explicit TransitionMatrix(const std::array<std::array<double, 3>, 3>& p);

  /// P(from -> to) in one time slot.
  [[nodiscard]] double prob(State from, State to) const noexcept {
    return p_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }

  /// The paper's experimental model: self-loops ~ U[0.90,0.99] per state,
  /// off-diagonals 0.5 * (1 - self-loop).
  [[nodiscard]] static TransitionMatrix paper_random(util::Rng& rng);

  /// Convenience builder from the three self-loop probabilities, splitting
  /// the off-diagonal mass evenly (the paper's parameterization).
  [[nodiscard]] static TransitionMatrix from_self_loops(double uu, double rr, double dd);

  /// A processor that can never fail (no transition into DOWN) makes the
  /// coupled-computation success probability 1 (paper §V-A: "Otherwise,
  /// P+(S) = 1"). Series code special-cases this.
  [[nodiscard]] bool failure_free() const noexcept {
    return prob(State::Up, State::Down) == 0.0 &&
           prob(State::Reclaimed, State::Down) == 0.0;
  }

  /// Stationary distribution pi (pi P = pi, sum 1). The chain in this study
  /// is recurrent and aperiodic, so it exists and is unique.
  [[nodiscard]] std::array<double, 3> stationary() const;

  /// Long-run fraction of time the processor is UP.
  [[nodiscard]] double availability() const { return stationary()[0]; }

  /// Integer cut points of each row for block-stepped sampling (see
  /// util::uniform01_cut): a raw draw x from state `from` steps to UP when
  /// min(x, kU01Top) < table[from][0], to RECLAIMED when < table[from][1],
  /// else to DOWN. Precomputed at construction: availability sources for
  /// thousands of paired trials share one platform's matrices, so the
  /// 64-step binary searches behind the cuts must not be redone per trial.
  [[nodiscard]] const std::array<std::array<std::uint64_t, 2>, 3>& step_cut_table()
      const noexcept {
    return cuts_;
  }

 private:
  void compute_cuts() noexcept;

  std::array<std::array<double, 3>, 3> p_;
  std::array<std::array<std::uint64_t, 2>, 3> cuts_{};
};

}  // namespace tcgrid::markov
