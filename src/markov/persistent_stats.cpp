#include "markov/persistent_stats.hpp"

#include <unistd.h>

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace tcgrid::markov {

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ on-disk format --
//
// One generation file, all integers little-endian host order (the store
// directory is machine-local shared state, not an interchange format), all
// sections 8-aligned by construction:
//
//   GenHeader | ChainRec[chain_count] | SetRec[set_count]
//             | key blob (u64[keys_count]) | survival blob (double[surv_count])
//             | GenFooter
//
// The footer is the suffix-validation seal (serve/checkpoint.cpp's torn-tail
// discipline applied to a whole file): magic + counts echoing the header +
// the total file size + an FNV-1a checksum over everything before it. A
// file that is short, oversized, bit-flipped or half-renamed fails at least
// one check and the loader skips it wholesale.

constexpr char kHeaderMagic[8] = {'T', 'C', 'G', 'S', 'G', 'E', 'N', '1'};
constexpr char kFooterMagic[8] = {'T', 'C', 'G', 'S', 'E', 'N', 'D', '1'};
constexpr std::uint64_t kVersion = 1;

struct GenHeader {
  char magic[8];
  std::uint64_t version;
  std::uint64_t eps_bits;     ///< std::bit_cast of the store eps
  std::uint64_t chain_count;
  std::uint64_t set_count;
  std::uint64_t chains_off;   ///< byte offset of ChainRec[chain_count]
  std::uint64_t sets_off;     ///< byte offset of SetRec[set_count]
  std::uint64_t keys_off;     ///< byte offset of the set-key blob
  std::uint64_t keys_count;   ///< u64 words in the key blob
  std::uint64_t surv_off;     ///< byte offset of the survival blob
  std::uint64_t surv_count;   ///< doubles in the survival blob
  std::uint64_t file_bytes;   ///< total file size, footer included
};
static_assert(sizeof(GenHeader) == 96);

struct ChainRec {
  std::uint64_t key[4];     ///< bit content of (uu, ur, ru, rr)
  std::uint64_t flags;      ///< kStatsPresent | kFailureFree | kConverged
  double p_plus;
  double ec;
  std::uint64_t surv_off;   ///< double-index into the survival blob
  std::uint64_t surv_len;   ///< published survival entries
  double row_u, row_r;      ///< UrRow frontier standing at entry surv_len-1
};
static_assert(sizeof(ChainRec) == 88);

struct SetRec {
  std::uint64_t key_off;    ///< u64-index into the key blob
  std::uint64_t key_count;  ///< chains in the multiset (4 words each)
  std::uint64_t flags;      ///< kFailureFree | kConverged
  double p_plus;
  double ec;
};
static_assert(sizeof(SetRec) == 40);

struct GenFooter {
  char magic[8];
  std::uint64_t chain_count;
  std::uint64_t set_count;
  std::uint64_t file_bytes;
  std::uint64_t checksum;   ///< FNV-1a over bytes [0, file_bytes - sizeof(GenFooter))
};
static_assert(sizeof(GenFooter) == 40);

constexpr std::uint64_t kStatsPresent = 1u << 0;
constexpr std::uint64_t kFailureFree = 1u << 1;
constexpr std::uint64_t kConverged = 1u << 2;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t pack_flags(bool present, const CoupledStats& s) {
  std::uint64_t f = present ? kStatsPresent : 0;
  if (s.failure_free) f |= kFailureFree;
  if (s.converged) f |= kConverged;
  return f;
}

CoupledStats unpack_stats(std::uint64_t flags, double p_plus, double ec) {
  CoupledStats s;
  s.p_plus = p_plus;
  s.ec = ec;
  s.failure_free = (flags & kFailureFree) != 0;
  s.converged = (flags & kConverged) != 0;
  return s;
}

// ------------------------------------------------------------------- metrics --

struct PersistMetrics {
  obs::Gauge generations;
  obs::Gauge mapped_bytes;
  obs::Counter chain_hits, chain_misses;
  obs::Counter set_hits, set_misses;
  obs::Counter skipped;
  obs::Counter flushed_entries;
  obs::Histogram load_us;
  obs::Histogram flush_us;
};

PersistMetrics& persist_metrics() {
  static PersistMetrics m = [] {
    obs::Registry& reg = obs::Registry::instance();
    return PersistMetrics{
        reg.gauge("tcgrid_persist_generations"),
        reg.gauge("tcgrid_persist_mapped_bytes"),
        reg.counter("tcgrid_persist_lookups_total",
                    {{"kind", "chain"}, {"result", "hit"}}),
        reg.counter("tcgrid_persist_lookups_total",
                    {{"kind", "chain"}, {"result", "miss"}}),
        reg.counter("tcgrid_persist_lookups_total",
                    {{"kind", "set"}, {"result", "hit"}}),
        reg.counter("tcgrid_persist_lookups_total",
                    {{"kind", "set"}, {"result", "miss"}}),
        reg.counter("tcgrid_persist_skipped_generations_total"),
        reg.counter("tcgrid_persist_flushed_entries_total"),
        reg.histogram("tcgrid_persist_load_us"),
        reg.histogram("tcgrid_persist_flush_us"),
    };
  }();
  return m;
}

}  // namespace

PersistentChainStats::PersistentChainStats(std::string dir, double eps)
    : dir_(std::move(dir)), eps_(eps) {
  if (eps_ <= 0.0) {
    throw std::invalid_argument("PersistentChainStats: eps must be positive");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("PersistentChainStats: cannot create store dir " +
                             dir_ + ": " + ec.message());
  }
  const std::lock_guard<std::mutex> lock(mu_);
  load_new_generations();
}

void PersistentChainStats::load_generation(const std::string& name) {
  // Any validation failure lands here: the generation is counted skipped and
  // remembered (a torn file never becomes valid, so refresh() need not
  // re-validate it every scan), and the store serves on without it.
  const auto skip = [&] {
    loaded_[name] = false;
    ++skipped_;
    if (obs::enabled()) persist_metrics().skipped.inc();
  };

  util::MappedFile map;
  try {
    map = util::MappedFile(dir_ + "/" + name);
  } catch (const std::exception&) {
    skip();  // vanished or unreadable: treat as torn
    return;
  }

  const char* data = map.data();
  const std::size_t size = map.size();
  if (size < sizeof(GenHeader) + sizeof(GenFooter)) return skip();

  GenHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kHeaderMagic, 8) != 0 || h.version != kVersion ||
      h.file_bytes != size) {
    return skip();
  }
  if (h.eps_bits != std::bit_cast<std::uint64_t>(eps_)) return skip();

  const std::uint64_t footer_off = size - sizeof(GenFooter);
  // Bounds before arithmetic: counts come off disk, so guard the multiplies.
  if (h.chain_count > size / sizeof(ChainRec) ||
      h.set_count > size / sizeof(SetRec) || h.keys_count > size / 8 ||
      h.surv_count > size / 8) {
    return skip();
  }
  const auto section_ok = [&](std::uint64_t off, std::uint64_t bytes) {
    return off % 8 == 0 && off >= sizeof(GenHeader) && off <= footer_off &&
           bytes <= footer_off - off;
  };
  if (!section_ok(h.chains_off, h.chain_count * sizeof(ChainRec)) ||
      !section_ok(h.sets_off, h.set_count * sizeof(SetRec)) ||
      !section_ok(h.keys_off, h.keys_count * 8) ||
      !section_ok(h.surv_off, h.surv_count * 8)) {
    return skip();
  }

  GenFooter f;
  std::memcpy(&f, data + footer_off, sizeof(f));
  if (std::memcmp(f.magic, kFooterMagic, 8) != 0 ||
      f.chain_count != h.chain_count || f.set_count != h.set_count ||
      f.file_bytes != size || f.checksum != fnv1a(data, footer_off)) {
    return skip();
  }

  // Per-record bounds, before anything is indexed: one bad record rejects
  // the whole generation (the file is a single write; partial trust in a
  // corrupted image buys nothing).
  const auto* surv_base = reinterpret_cast<const double*>(data + h.surv_off);
  const auto* key_base = reinterpret_cast<const std::uint64_t*>(data + h.keys_off);
  for (std::uint64_t i = 0; i < h.chain_count; ++i) {
    ChainRec rec;
    std::memcpy(&rec, data + h.chains_off + i * sizeof(ChainRec), sizeof(rec));
    if (rec.surv_len > h.surv_count || rec.surv_off > h.surv_count - rec.surv_len) {
      return skip();
    }
  }
  for (std::uint64_t i = 0; i < h.set_count; ++i) {
    SetRec rec;
    std::memcpy(&rec, data + h.sets_off + i * sizeof(SetRec), sizeof(rec));
    if (rec.key_count > h.keys_count / 4 ||
        rec.key_off > h.keys_count - rec.key_count * 4) {
      return skip();
    }
  }

  // Valid: index every record. Duplicates across generations hold identical
  // doubles by purity — keep the first stats quad seen and the LONGEST
  // survival prefix (a later flush may extend an earlier generation's).
  for (std::uint64_t i = 0; i < h.chain_count; ++i) {
    ChainRec rec;
    std::memcpy(&rec, data + h.chains_off + i * sizeof(ChainRec), sizeof(rec));
    ChainHit hit;
    hit.has_stats = (rec.flags & kStatsPresent) != 0;
    hit.stats = unpack_stats(rec.flags, rec.p_plus, rec.ec);
    hit.survival = rec.surv_len > 0 ? surv_base + rec.surv_off : nullptr;
    hit.survival_len = static_cast<long>(rec.surv_len);
    hit.row.u = rec.row_u;
    hit.row.r = rec.row_r;
    const std::array<std::uint64_t, 4> key{rec.key[0], rec.key[1], rec.key[2],
                                           rec.key[3]};
    auto [it, inserted] = chains_.try_emplace(key, hit);
    if (inserted) {
      survival_doubles_ += static_cast<std::size_t>(hit.survival_len);
    } else {
      ChainHit& cur = it->second;
      if (!cur.has_stats && hit.has_stats) {
        cur.has_stats = true;
        cur.stats = hit.stats;
      }
      if (hit.survival_len > cur.survival_len) {
        survival_doubles_ +=
            static_cast<std::size_t>(hit.survival_len - cur.survival_len);
        cur.survival = hit.survival;
        cur.survival_len = hit.survival_len;
        cur.row = hit.row;
      }
    }
  }
  for (std::uint64_t i = 0; i < h.set_count; ++i) {
    SetRec rec;
    std::memcpy(&rec, data + h.sets_off + i * sizeof(SetRec), sizeof(rec));
    std::vector<std::uint64_t> key(key_base + rec.key_off,
                                   key_base + rec.key_off + rec.key_count * 4);
    sets_.try_emplace(std::move(key),
                      SetVal{unpack_stats(rec.flags, rec.p_plus, rec.ec)});
  }

  mapped_bytes_ += size;
  generations_.push_back(std::move(map));  // retired only at destruction
  loaded_[name] = true;
}

std::size_t PersistentChainStats::load_new_generations() {
  const obs::ScopedTimer timer(persist_metrics().load_us);
  std::size_t mapped = 0;
  for (const std::string& name : util::list_dir(dir_, "gen-", ".tcs")) {
    if (loaded_.contains(name)) continue;
    const std::size_t before = generations_.size();
    load_generation(name);
    mapped += generations_.size() - before;
  }
  update_gauges();
  return mapped;
}

void PersistentChainStats::update_gauges() const {
  if (!obs::enabled()) return;
  PersistMetrics& m = persist_metrics();
  m.generations.set(static_cast<long long>(generations_.size()));
  m.mapped_bytes.set(static_cast<long long>(mapped_bytes_));
}

bool PersistentChainStats::find_chain(const std::array<std::uint64_t, 4>& key,
                                      ChainHit& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = chains_.find(key);
  if (it == chains_.end()) {
    ++chain_misses_;
    if (obs::enabled()) persist_metrics().chain_misses.inc();
    return false;
  }
  ++chain_hits_;
  if (obs::enabled()) persist_metrics().chain_hits.inc();
  out = it->second;
  return true;
}

bool PersistentChainStats::find_set(std::span<const std::uint64_t> key,
                                    CoupledStats& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sets_.find(std::vector<std::uint64_t>(key.begin(), key.end()));
  if (it == sets_.end()) {
    ++set_misses_;
    if (obs::enabled()) persist_metrics().set_misses.inc();
    return false;
  }
  ++set_hits_;
  if (obs::enabled()) persist_metrics().set_hits.inc();
  out = it->second.stats;
  return true;
}

std::size_t PersistentChainStats::refresh() {
  const std::lock_guard<std::mutex> lock(mu_);
  return load_new_generations();
}

void PersistentChainStats::set_flush_fault_for_test(FlushFault fault) {
  const std::lock_guard<std::mutex> lock(flush_mu_);
  fault_ = fault;
}

std::size_t PersistentChainStats::flush_from(const ChainStatsStore& store) {
  assert(store.eps() == eps_ &&
         "PersistentChainStats::flush_from: store/persist eps mismatch");
  std::vector<ChainStatsStore::ExportedChain> chains;
  std::vector<ChainStatsStore::ExportedSet> sets;
  store.export_entries(chains, sets);

  const std::lock_guard<std::mutex> flush_lock(flush_mu_);
  const FlushFault fault = std::exchange(fault_, FlushFault{});

  // Keep only what disk does not already hold: new chains, a newly computed
  // quad for a chain whose earlier flush had only survival, or a survival
  // prefix longer than the persisted one. Sets are immutable once written.
  std::vector<const ChainStatsStore::ExportedChain*> new_chains;
  std::vector<const ChainStatsStore::ExportedSet*> new_sets;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& c : chains) {
      const auto it = chains_.find(c.key);
      if (it == chains_.end()) {
        new_chains.push_back(&c);
      } else if ((c.has_stats && !it->second.has_stats) ||
                 static_cast<long>(c.survival.size()) >
                     it->second.survival_len) {
        new_chains.push_back(&c);
      }
    }
    for (const auto& s : sets) {
      if (!sets_.contains(s.key)) new_sets.push_back(&s);
    }
  }
  if (new_chains.empty() && new_sets.empty()) return 0;

  const obs::ScopedTimer timer(persist_metrics().flush_us);

  // Section sizes.
  std::uint64_t surv_count = 0;
  for (const auto* c : new_chains) surv_count += c->survival.size();
  std::uint64_t keys_count = 0;
  for (const auto* s : new_sets) keys_count += s->key.size();

  GenHeader h{};
  std::memcpy(h.magic, kHeaderMagic, 8);
  h.version = kVersion;
  h.eps_bits = std::bit_cast<std::uint64_t>(eps_);
  h.chain_count = new_chains.size();
  h.set_count = new_sets.size();
  h.chains_off = sizeof(GenHeader);
  h.sets_off = h.chains_off + h.chain_count * sizeof(ChainRec);
  h.keys_off = h.sets_off + h.set_count * sizeof(SetRec);
  h.surv_off = h.keys_off + keys_count * 8;
  h.keys_count = keys_count;
  h.surv_count = surv_count;
  const std::uint64_t footer_off = h.surv_off + surv_count * 8;
  h.file_bytes = footer_off + sizeof(GenFooter);

  std::string image(h.file_bytes, '\0');
  const auto put = [&](std::uint64_t off, const void* src, std::size_t n) {
    std::memcpy(image.data() + off, src, n);
  };
  put(0, &h, sizeof(h));

  std::uint64_t surv_cursor = 0;
  for (std::size_t i = 0; i < new_chains.size(); ++i) {
    const auto& c = *new_chains[i];
    ChainRec rec{};
    rec.key[0] = c.key[0];
    rec.key[1] = c.key[1];
    rec.key[2] = c.key[2];
    rec.key[3] = c.key[3];
    rec.flags = pack_flags(c.has_stats, c.stats);
    rec.p_plus = c.has_stats ? c.stats.p_plus : 0.0;
    rec.ec = c.has_stats ? c.stats.ec : 0.0;
    rec.surv_off = surv_cursor;
    rec.surv_len = c.survival.size();
    rec.row_u = c.row.u;
    rec.row_r = c.row.r;
    put(h.chains_off + i * sizeof(ChainRec), &rec, sizeof(rec));
    if (!c.survival.empty()) {
      put(h.surv_off + surv_cursor * 8, c.survival.data(),
          c.survival.size() * 8);
      surv_cursor += c.survival.size();
    }
  }
  std::uint64_t key_cursor = 0;
  for (std::size_t i = 0; i < new_sets.size(); ++i) {
    const auto& s = *new_sets[i];
    SetRec rec{};
    rec.key_off = key_cursor;
    rec.key_count = s.key.size() / 4;
    rec.flags = pack_flags(true, s.stats) & ~kStatsPresent;
    rec.p_plus = s.stats.p_plus;
    rec.ec = s.stats.ec;
    put(h.sets_off + i * sizeof(SetRec), &rec, sizeof(rec));
    put(h.keys_off + key_cursor * 8, s.key.data(), s.key.size() * 8);
    key_cursor += s.key.size();
  }

  GenFooter f{};
  std::memcpy(f.magic, kFooterMagic, 8);
  f.chain_count = h.chain_count;
  f.set_count = h.set_count;
  f.file_bytes = h.file_bytes;
  f.checksum = fnv1a(image.data(), footer_off);
  put(footer_off, &f, sizeof(f));

  // Pick a name no generation already uses. Names carry the pid, so only a
  // restart that recycled the pid over an existing directory can collide —
  // the existence check bumps past it rather than renaming over history.
  std::string name;
  do {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "gen-%ld-%llu.tcs",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(flush_seq_++));
    name = buf;
  } while (fs::exists(dir_ + "/" + name));

  switch (fault.kind) {
    case FlushFault::Kind::TornTemp: {
      // Crash mid temp write: a short *.tcs.tmp is left behind and nothing
      // is published. Loaders never look at .tmp files.
      std::FILE* fp = std::fopen((dir_ + "/" + name + ".tmp").c_str(), "wb");
      if (fp != nullptr) {
        std::fwrite(image.data(), 1,
                    std::min<std::size_t>(image.size(),
                                          static_cast<std::size_t>(
                                              std::max<long>(0, fault.keep_bytes))),
                    fp);
        std::fclose(fp);
      }
      return 0;
    }
    case FlushFault::Kind::SkipPublish: {
      // Crash after the temp write, before rename: full .tmp, no generation.
      std::FILE* fp = std::fopen((dir_ + "/" + name + ".tmp").c_str(), "wb");
      if (fp != nullptr) {
        std::fwrite(image.data(), 1, image.size(), fp);
        std::fclose(fp);
      }
      return 0;
    }
    case FlushFault::Kind::PublishTruncated: {
      // Negative keep_bytes counts back from the end of the image (the
      // "torn just shy of the footer" shape, whatever the image size).
      const long keep = fault.keep_bytes >= 0
                            ? fault.keep_bytes
                            : std::max<long>(0, static_cast<long>(image.size()) +
                                                    fault.keep_bytes);
      util::write_file_atomic(dir_, name, image, keep);
      break;
    }
    case FlushFault::Kind::None:
      util::write_file_atomic(dir_, name, image);
      break;
  }

  const std::size_t entries = new_chains.size() + new_sets.size();
  {
    // Index what was just published through the normal load path — for a
    // fault-truncated publish that correctly counts it as skipped.
    const std::lock_guard<std::mutex> lock(mu_);
    if (!loaded_.contains(name)) load_generation(name);
    if (fault.kind == FlushFault::Kind::None) {
      ++flushes_;
      flushed_entries_ += entries;
    }
    update_gauges();
  }
  if (fault.kind != FlushFault::Kind::None) return 0;
  if (obs::enabled()) {
    persist_metrics().flushed_entries.inc(static_cast<std::uint64_t>(entries));
  }
  return entries;
}

PersistentChainStats::Counters PersistentChainStats::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Counters out;
  out.generations = generations_.size();
  out.mapped_bytes = mapped_bytes_;
  out.chains = chains_.size();
  out.sets = sets_.size();
  out.survival_doubles = survival_doubles_;
  out.chain_hits = chain_hits_;
  out.chain_misses = chain_misses_;
  out.set_hits = set_hits_;
  out.set_misses = set_misses_;
  out.skipped_generations = skipped_;
  out.flushes = flushes_;
  out.flushed_entries = flushed_entries_;
  return out;
}

}  // namespace tcgrid::markov
