#include "markov/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tcgrid::markov {

namespace {

/// Product of dominant eigenvalues: decay rate of g(t).
double decay_rate(std::span<const UrMatrix> procs) {
  double lambda = 1.0;
  for (const auto& m : procs) lambda *= m.lambda1();
  return lambda;
}

/// All processors failure-free -> the all-UP event recurs with probability 1.
bool all_failure_free(std::span<const UrMatrix> procs) {
  return std::all_of(procs.begin(), procs.end(),
                     [](const UrMatrix& m) { return m.failure_free(); });
}

}  // namespace

UpSeriesSums up_series(std::span<const UrMatrix> procs, double eps,
                       std::size_t max_terms) {
  UpSeriesSums out;
  const double lambda = decay_rate(procs);
  if (lambda >= 1.0) {
    // Divergent (failure-free) series; callers must use the renewal path.
    out.converged = false;
    return out;
  }

  std::vector<UrRow> rows(procs.size());
  double lambda_pow = 1.0;  // lambda^t
  for (std::size_t t = 1; t <= max_terms; ++t) {
    double g = 1.0;
    for (std::size_t q = 0; q < procs.size(); ++q) {
      rows[q].advance(procs[q]);
      g *= rows[q].u;
    }
    out.eu += g;
    out.a += static_cast<double>(t) * g;
    out.terms = t;
    lambda_pow *= lambda;

    // Tail bounds after T terms:  sum_{t>T} lambda^t       = lambda^{T+1}/(1-lambda)
    //                             sum_{t>T} t lambda^t    <= lambda^{T+1} *
    //                                ((T+1)/(1-lambda) + lambda/(1-lambda)^2)
    const double tail_a = lambda_pow * lambda *
                          ((static_cast<double>(t) + 1.0) / (1.0 - lambda) +
                           lambda / ((1.0 - lambda) * (1.0 - lambda)));
    if (tail_a <= eps) return out;
  }
  out.converged = false;
  return out;
}

RenewalResult renewal_first_return(std::span<const UrMatrix> procs,
                                   std::size_t horizon) {
  RenewalResult out;
  out.f.assign(horizon + 1, 0.0);

  // g[t] for t = 1..horizon.
  std::vector<double> g(horizon + 1, 0.0);
  std::vector<UrRow> rows(procs.size());
  for (std::size_t t = 1; t <= horizon; ++t) {
    double prod = 1.0;
    for (std::size_t q = 0; q < procs.size(); ++q) {
      rows[q].advance(procs[q]);
      prod *= rows[q].u;
    }
    g[t] = prod;
  }

  for (std::size_t t = 1; t <= horizon; ++t) {
    double conv = 0.0;
    for (std::size_t s = 1; s < t; ++s) conv += out.f[s] * g[t - s];
    out.f[t] = std::max(0.0, g[t] - conv);
    out.p_plus += out.f[t];
    out.ec_uncond += static_cast<double>(t) * out.f[t];
  }
  return out;
}

const std::array<double, 2>& CoupledStats::wtab_grow(long w) const {
  // Grow the memo through the reference expressions so lookups return the
  // exact doubles direct computation would.
  auto size = static_cast<long>(wtab_.size());
  wtab_.reserve(static_cast<std::size_t>(w + 1));
  for (; size <= w; ++size) {
    const double sp =
        size <= 1 ? 1.0 : std::pow(p_plus, static_cast<double>(size - 1));
    double et = 0.0;
    if (size > 0) {
      const double numer = 1.0 + static_cast<double>(size - 1) * ec;
      et = sp <= 0.0 ? std::numeric_limits<double>::infinity() : numer / sp;
    }
    wtab_.push_back({sp, et});
  }
  return wtab_[static_cast<std::size_t>(w)];
}

double CoupledStats::pow_success(long w) const {
  return std::pow(p_plus, static_cast<double>(w - 1));
}

double CoupledStats::big_expected_time(long w) const {
  const double numer = 1.0 + static_cast<double>(w - 1) * ec;
  const double denom = success_prob(w);
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return numer / denom;
}

CoupledStats coupled_stats(std::span<const UrMatrix> procs, double eps,
                           std::size_t max_terms) {
  CoupledStats out;
  if (procs.empty()) {
    out.failure_free = true;
    out.p_plus = 1.0;
    out.ec = 1.0;  // with no constraint, the next slot is always "all UP"
    return out;
  }
  const double lambda = [&] {
    double l = 1.0;
    for (const auto& m : procs) l *= m.lambda1();
    return l;
  }();
  if (lambda >= 1.0 - 1e-12) {
    // The spectral tail bound is useless (some processor cannot fail, or can
    // only fail through RECLAIMED while its UP state is absorbing): the
    // Eu/A series may diverge. The first-return mass still converges, so use
    // the renewal recursion directly, growing the horizon until the residual
    // first-return probability is below eps.
    out.failure_free = all_failure_free(procs);
    // The recursion is O(horizon^2); cap it. Aperiodic chains concentrate
    // their first-return mass at small t, so stop early once doubling the
    // horizon no longer adds meaningful mass.
    const std::size_t horizon_cap = std::min<std::size_t>(max_terms, 8192);
    std::size_t horizon = 64;
    double prev_mass = -1.0;
    for (;;) {
      const RenewalResult r = renewal_first_return(procs, horizon);
      const double residual = 1.0 - r.p_plus;
      const bool stalled = prev_mass >= 0.0 && r.p_plus - prev_mass <= eps * 0.25;
      if (residual <= eps || stalled || horizon >= horizon_cap) {
        // Paper: P+ = 1 exactly when no processor can fail.
        out.p_plus = out.failure_free ? 1.0 : r.p_plus;
        out.ec = r.ec_uncond;
        out.converged = residual <= eps || stalled;
        return out;
      }
      prev_mass = r.p_plus;
      horizon *= 2;
    }
  }

  const UpSeriesSums sums = up_series(procs, eps, max_terms);
  out.converged = sums.converged;
  out.p_plus = sums.eu / (1.0 + sums.eu);
  out.ec = sums.a * (1.0 - out.p_plus) / (1.0 + sums.eu);
  return out;
}

}  // namespace tcgrid::markov
