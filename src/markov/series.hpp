// Truncated-series evaluation of the paper's Theorem 5.1 quantities.
//
// For a set S of processors, all UP at time 0, with UR sub-matrices M_q:
//
//   g(t)  = prod_q (M_q^t)[u][u]        (all UP at t, none DOWN in between)
//   Eu(S) = sum_{t>=1} g(t)             (expected # of all-UP slots pre-failure)
//   A(S)  = sum_{t>=1} t * g(t)
//
//   P+(S) = Eu / (1 + Eu)               (prob. of a next all-UP slot, no DOWN)
//   E_c   = A * (1 - P+) / (1 + Eu)     (paper's approximation of the gap)
//
// The spectral bound g(t) <= Lambda^t with Lambda = prod_q lambda1(M_q) < 1
// gives closed-form tails, so both series can be truncated at any requested
// precision eps in polynomial time (the theorem's claim).
//
// When every processor in S is failure-free, Eu diverges; the paper then
// defines P+(S) = 1, and we obtain E_c directly from the first-return
// distribution via the renewal recursion below.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "markov/spectral.hpp"

namespace tcgrid::markov {

/// Result of summing the all-UP survival series.
struct UpSeriesSums {
  double eu = 0.0;        ///< sum g(t), t >= 1 (truncated)
  double a = 0.0;         ///< sum t*g(t), t >= 1 (truncated)
  std::size_t terms = 0;  ///< number of series terms evaluated
  bool converged = true;  ///< tail bound met before hitting max_terms
};

/// Sum Eu(S) and A(S) with neglected tail <= eps (for both sums).
/// `max_terms` caps the work for near-critical Lambda; if hit, `converged`
/// is false and the sums are lower bounds.
[[nodiscard]] UpSeriesSums up_series(std::span<const UrMatrix> procs, double eps,
                                     std::size_t max_terms = 1 << 20);

/// First-return ("renewal") distribution of the all-UP event.
///
/// f(t) = P(first time all processors are simultaneously UP again is t,
///          with no processor DOWN in between), computed by deconvolving
///   g(t) = f(t) + sum_{s<t} f(s) g(t-s)
/// up to `horizon`. O(horizon^2); used as the production path only for
/// failure-free sets and as a cross-check of the closed forms in tests.
struct RenewalResult {
  std::vector<double> f;    ///< f[t] for t = 0..horizon (f[0] unused, = 0)
  double p_plus = 0.0;      ///< sum f(t) up to horizon
  double ec_uncond = 0.0;   ///< sum t*f(t) up to horizon (paper's E_c form)
};

[[nodiscard]] RenewalResult renewal_first_return(std::span<const UrMatrix> procs,
                                                 std::size_t horizon);

/// Everything the scheduler needs about a coupled computation on set S
/// (paper §V-A), precomputed once per candidate set.
struct CoupledStats {
  double p_plus = 1.0;      ///< P+(S)
  double ec = 0.0;          ///< E_c
  bool failure_free = false;
  bool converged = true;

  /// Probability that W slots of coupled computation complete with no
  /// processor of S going DOWN: P+(S)^(W-1) (the first slot is "now").
  /// Memo-hit path inline — these two sit under the m*p candidate
  /// evaluations of every scheduling decision.
  [[nodiscard]] double success_prob(long w) const {
    if (w <= 1) return 1.0;
    if (w > kMaxMemoW) return pow_success(w);
    return wtab(w)[0];
  }

  /// Paper's approximation E^{(S)}(W) = (1 + (W-1) E_c) / P+^(W-1) of the
  /// expected number of slots to obtain W all-UP slots, conditioned on
  /// success. Returns 0 for w <= 0.
  [[nodiscard]] double expected_time(long w) const {
    if (w <= 0) return 0.0;
    if (w > kMaxMemoW) return big_expected_time(w);
    return wtab(w)[1];
  }

 private:
  /// Lazily grown memo of (success_prob, expected_time) indexed by w: the
  /// incremental heuristics evaluate m*p candidates per decision, each
  /// costing pow() calls for a handful of distinct small w values. Entries
  /// are computed once through the very expressions above, so memoized and
  /// unmemoized calls return identical doubles. NOT thread-safe — callers
  /// already own one Estimator (and thus these) per thread.
  static constexpr long kMaxMemoW = 4096;  ///< larger w falls through to pow()
  const std::array<double, 2>& wtab(long w) const {
    if (w < static_cast<long>(wtab_.size())) {
      return wtab_[static_cast<std::size_t>(w)];
    }
    return wtab_grow(w);
  }
  const std::array<double, 2>& wtab_grow(long w) const;
  double pow_success(long w) const;       ///< P+^(w-1), w > kMaxMemoW
  double big_expected_time(long w) const; ///< reference form, w > kMaxMemoW
  mutable std::vector<std::array<double, 2>> wtab_;
};

/// Evaluate CoupledStats for a set of processors at precision eps.
[[nodiscard]] CoupledStats coupled_stats(std::span<const UrMatrix> procs, double eps,
                                         std::size_t max_terms = 1 << 20);

}  // namespace tcgrid::markov
