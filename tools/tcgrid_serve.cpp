// tcgrid_serve — the sweep-as-a-service daemon (DESIGN.md §11).
//
// Listens on a unix-domain socket and speaks the newline-delimited-JSON
// serve protocol: submit / status / results / cancel / counters. Jobs are
// checkpointed under --root; restarting the daemon with the same root
// resumes every incomplete job where it stopped.
//
// Usage:
//   tcgrid_serve --socket /tmp/tcgrid.sock --root /var/lib/tcgrid \
//                [--threads N] [--eps 1e-6] [--store-dir DIR] \
//                [--default-quota RB:CB] [--quota tenant=RB:CB]... \
//                [--no-obs] [--trace PATH]
//
// RB:CB are the per-tenant realization-budget and chain-store-bytes quotas,
// as byte counts with an optional k/m/g suffix (e.g. 64m:512m).
//
// --store-dir enables the persistent chain-statistics cache (DESIGN.md
// §14): one content-addressed generation directory shared by every tenant
// session, mmap'd read-only and flushed at job completion and eviction
// quiesce points. Restarting the daemon — or running several daemons on
// the directory — reuses everything already computed.
//
// Observability (DESIGN.md §12) is ON by default in the daemon — the
// `metrics` verb is the point of running one — and its enabled-path cost is
// within the measured <2% budget; --no-obs turns the update hot paths off
// (the verb still answers, with zero-valued series). --trace appends one
// canonical-JSON line per span/event to PATH.
//
// Coordinator mode (DESIGN.md §15): with --coordinator the daemon runs no
// local workers — it leases (scenario, trial) units to stock tcgrid_serve
// shard daemons (--shard, repeatable, unix:PATH or tcp:HOST:PORT; more can
// join at runtime via the `register` verb) with pull-based work stealing,
// and merges the streamed rows into its own checkpoint. The client-facing
// verbs are unchanged, and the merged row set is byte-identical to a
// single-process run. --listen-tcp accepts the same protocol over TCP —
// the natural shape for shards on other hosts.
//
// SIGINT/SIGTERM stop the daemon cleanly (in-flight units are abandoned,
// not committed — exactly the kill -9 contract, just politer to the
// socket). SIGPIPE is ignored; vanished clients surface as write failures.

#include <pthread.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "util/socket.hpp"

namespace {

using tcgrid::serve::Server;
using tcgrid::serve::ServerOptions;
using tcgrid::serve::TenantQuota;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --root DIR [--threads N] [--eps X]\n"
               "          [--store-dir DIR] [--default-quota RB:CB]\n"
               "          [--quota tenant=RB:CB]... [--no-obs] [--trace PATH]\n"
               "          [--listen-tcp HOST:PORT] [--coordinator]\n"
               "          [--shard ADDR]... [--shard-slots N] [--lease-batch N]\n"
               "          [--heartbeat-ms N] [--heartbeat-timeout-ms N] [--no-steal]\n"
               "  RB:CB = realization-budget : chain-store bytes, optional k/m/g suffix\n"
               "  --store-dir enables the shared persistent chain-statistics cache\n"
               "  --no-obs disables metric updates; --trace appends span events to PATH\n"
               "  --listen-tcp also accepts the protocol on a TCP port\n"
               "  --coordinator runs no local workers: units are leased to --shard\n"
               "    daemons (unix:PATH or tcp:HOST:PORT; repeatable, or registered at\n"
               "    runtime) with work stealing, rows merged byte-identically\n",
               argv0);
  std::exit(2);
}

std::size_t parse_bytes(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("empty byte count");
  std::size_t mult = 1;
  std::string digits = s;
  switch (digits.back()) {
    case 'k': case 'K': mult = 1ull << 10; digits.pop_back(); break;
    case 'm': case 'M': mult = 1ull << 20; digits.pop_back(); break;
    case 'g': case 'G': mult = 1ull << 30; digits.pop_back(); break;
    default: break;
  }
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(digits, &pos);
  if (pos != digits.size()) throw std::invalid_argument("bad byte count '" + s + "'");
  return static_cast<std::size_t>(v) * mult;
}

TenantQuota parse_quota(const std::string& s) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("quota must be RB:CB, got '" + s + "'");
  }
  TenantQuota q;
  q.realization_budget = parse_bytes(s.substr(0, colon));
  q.chain_store_bytes = parse_bytes(s.substr(colon + 1));
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_listen;
  ServerOptions options;
  tcgrid::obs::Options obs_options;
  obs_options.enabled = true;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--socket") socket_path = next();
      else if (arg == "--root") options.root = next();
      else if (arg == "--threads") options.threads = std::stoul(next());
      else if (arg == "--eps") options.eps = std::stod(next());
      else if (arg == "--store-dir") options.store_dir = next();
      else if (arg == "--default-quota") options.default_quota = parse_quota(next());
      else if (arg == "--quota") {
        const std::string v = next();
        const std::size_t eq = v.find('=');
        if (eq == std::string::npos) {
          throw std::invalid_argument("--quota expects tenant=RB:CB, got '" + v + "'");
        }
        options.tenant_quotas[v.substr(0, eq)] = parse_quota(v.substr(eq + 1));
      }
      else if (arg == "--no-obs") obs_options.enabled = false;
      else if (arg == "--trace") obs_options.trace_path = next();
      else if (arg == "--listen-tcp") tcp_listen = next();
      else if (arg == "--coordinator") options.coordinator = true;
      else if (arg == "--shard") options.shard.shards.push_back(next());
      else if (arg == "--shard-slots") options.shard.slots_per_shard = std::stoul(next());
      else if (arg == "--lease-batch") options.shard.lease_batch = std::stoul(next());
      else if (arg == "--heartbeat-ms") options.shard.heartbeat_interval_ms = std::stol(next());
      else if (arg == "--heartbeat-timeout-ms") options.shard.heartbeat_timeout_ms = std::stol(next());
      else if (arg == "--no-steal") options.shard.steal = false;
      else usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcgrid_serve: %s\n", e.what());
    return 2;
  }
  if (socket_path.empty() || options.root.empty()) usage(argv[0]);
  tcgrid::obs::configure(obs_options);

  // Block the stop signals in every thread (workers inherit the mask); one
  // dedicated thread sigwait()s them and triggers the stop.
  sigset_t stop_set;
  sigemptyset(&stop_set);
  sigaddset(&stop_set, SIGINT);
  sigaddset(&stop_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_set, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    Server server(options);
    tcgrid::util::Fd listen_fd = tcgrid::util::listen_unix(socket_path);
    tcgrid::util::Fd tcp_fd;
    std::thread tcp_thread;
    if (!tcp_listen.empty()) {
      const std::size_t colon = tcp_listen.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--listen-tcp expects HOST:PORT, got '" +
                                    tcp_listen + "'");
      }
      tcp_fd = tcgrid::util::listen_tcp(
          tcp_listen.substr(0, colon),
          static_cast<unsigned short>(std::stoul(tcp_listen.substr(colon + 1))));
      tcp_thread = std::thread([&] { server.serve(tcp_fd.get()); });
      std::fprintf(stderr, "tcgrid_serve: listening on tcp:%s\n", tcp_listen.c_str());
    }
    std::fprintf(stderr, "tcgrid_serve: listening on %s (root %s)%s\n",
                 socket_path.c_str(), options.root.c_str(),
                 options.coordinator ? " [coordinator]" : "");

    std::thread stopper([&] {
      int sig = 0;
      sigwait(&stop_set, &sig);
      std::fprintf(stderr, "tcgrid_serve: signal %d, stopping\n", sig);
      server.hard_stop();
    });

    server.serve(listen_fd.get());  // returns once hard_stop() ran
    stopper.join();
    if (tcp_thread.joinable()) tcp_thread.join();
    listen_fd.reset();
    tcp_fd.reset();
    ::unlink(socket_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcgrid_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
